//! Performance-feedback-weighted voting — the §6 extension.
//!
//! The paper proposes: "for the similar carriers with matching attributes
//! and different distribution of parameter values, we can provide higher
//! weights (in our voting approach) to configuration changes that have
//! improved service performance in the past." This module implements that
//! weighted voter: each voting carrier contributes its KPI-derived weight
//! instead of a unit count, and the winner still needs the support
//! threshold — now over weighted mass.

use auric_model::ValueIdx;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A weighted multiset of values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedVotes {
    mass: HashMap<ValueIdx, f64>,
    total: f64,
}

impl WeightedVotes {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vote for `value` with weight `w` (a KPI health score; unit
    /// weight reproduces plain voting).
    ///
    /// # Panics
    /// Panics on non-finite or negative weights.
    pub fn add(&mut self, value: ValueIdx, w: f64) {
        assert!(
            w.is_finite() && w >= 0.0,
            "weights must be finite and >= 0, got {w}"
        );
        *self.mass.entry(value).or_insert(0.0) += w;
        self.total += w;
    }

    /// Total weighted mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The value with the largest mass if its share reaches `threshold`.
    /// Ties break toward the smaller value.
    pub fn winner(&self, threshold: f64) -> Option<(ValueIdx, f64)> {
        if self.total <= 0.0 {
            return None;
        }
        let (&v, &m) = self
            .mass
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))?;
        (m >= threshold * self.total - 1e-12).then_some((v, m))
    }
}

/// A per-carrier KPI score in `[0, 1]` used as the vote weight. In
/// production this would come from throughput / accessibility / retention
/// counters; here it is supplied by the caller (the EMS simulator derives
/// one from its monitoring stage).
pub trait KpiSource {
    /// The weight of carrier `c`'s vote.
    fn weight(&self, c: auric_model::CarrierId) -> f64;
}

/// A KPI source backed by a map, defaulting to 1.0 (healthy).
#[derive(Debug, Clone, Default)]
pub struct MapKpi {
    pub weights: HashMap<auric_model::CarrierId, f64>,
}

impl KpiSource for MapKpi {
    fn weight(&self, c: auric_model::CarrierId) -> f64 {
        self.weights.get(&c).copied().unwrap_or(1.0)
    }
}

/// Performance-weighted local recommendation for a singular parameter:
/// like [`crate::cf::CfModel::recommend_local_singular`], but neighbors
/// vote with their KPI weight.
pub fn recommend_local_weighted(
    snapshot: &auric_model::NetworkSnapshot,
    model: &crate::cf::CfModel,
    kpi: &dyn KpiSource,
    param: auric_model::ParamId,
    carrier: auric_model::CarrierId,
) -> crate::cf::Recommendation {
    let pc = model.param(param);
    let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
    let mut votes = WeightedVotes::new();
    if pc.codec().fits_u128() {
        // Integer compares against the fitted key column (see cf.rs).
        let packed = pc.packed_for_carrier(&snapshot.carrier(carrier).attrs);
        let col = pc.carrier_keys();
        for n in snapshot.x2.k_hop_neighbors(carrier, model.config.hops) {
            let nkey = match col {
                Some(col) => col[n.index()],
                None => pc.packed_for_carrier(&snapshot.carrier(n).attrs),
            };
            if nkey == packed {
                votes.add(snapshot.config.value(param, n), kpi.weight(n));
            }
        }
    } else {
        for n in snapshot.x2.k_hop_neighbors(carrier, model.config.hops) {
            let neighbor = snapshot.carrier(n);
            if pc.key_for_carrier(&neighbor.attrs) == key {
                votes.add(snapshot.config.value(param, n), kpi.weight(n));
            }
        }
    }
    if let Some((value, mass)) = votes.winner(model.config.support) {
        return crate::cf::Recommendation {
            value,
            basis: crate::cf::Basis::LocalVote,
            support: mass.round() as usize,
            voters: votes.total().round() as usize,
        };
    }
    model.recommend_global(param, &key, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::{CfConfig, CfModel};
    use crate::scope::Scope;
    use auric_model::CarrierId;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn unit_weights_reproduce_plain_voting() {
        let mut w = WeightedVotes::new();
        for _ in 0..3 {
            w.add(5, 1.0);
        }
        w.add(9, 1.0);
        assert_eq!(w.winner(0.75), Some((5, 3.0)));
        assert_eq!(w.winner(0.76), None);
    }

    #[test]
    fn heavier_voters_flip_outcomes() {
        let mut w = WeightedVotes::new();
        w.add(5, 1.0);
        w.add(5, 1.0);
        // One voter whose value historically improved performance.
        w.add(9, 8.0);
        assert_eq!(w.winner(0.75), Some((9, 8.0)));
    }

    #[test]
    fn zero_weight_voters_are_inert() {
        let mut w = WeightedVotes::new();
        w.add(3, 0.0);
        assert_eq!(w.winner(0.5), None, "zero total mass cannot elect anyone");
        w.add(4, 1.0);
        assert_eq!(w.winner(0.9), Some((4, 1.0)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_bad_weights() {
        WeightedVotes::new().add(1, f64::NAN);
    }

    #[test]
    fn weighted_recommendation_downweights_unhealthy_neighbors() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let p = snap.catalog.singular_ids().next().unwrap();
        // Healthy network: weighted == unweighted.
        let kpi = MapKpi::default();
        for i in 0..snap.n_carriers().min(50) {
            let c = CarrierId::from_index(i);
            let plain = model.recommend_local_singular(snap, p, c, false);
            let weighted = recommend_local_weighted(snap, &model, &kpi, p, c);
            assert_eq!(plain.value, weighted.value, "carrier {c}");
        }
    }
}
