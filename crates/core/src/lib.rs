//! **Auric** — the paper's contribution: data-driven recommendation of
//! cellular configuration for newly added carriers (§3).
//!
//! The pipeline mirrors Fig. 5:
//!
//! 1. **Dependency learning** ([`dependency`]): for every configuration
//!    parameter, chi-square tests of independence (at `p = 0.01`) decide
//!    which carrier attributes the parameter depends on, filtering out the
//!    irrelevant ones that mislead distance-based learners.
//! 2. **Voting** ([`voting`], [`cf`]): existing carriers whose dependent
//!    attributes exactly match the target are grouped; the value with at
//!    least 75% support wins. The *global* learner votes over the whole
//!    learning scope.
//! 3. **Geographic proximity** ([`cf`], §3.3): the *local* learner
//!    restricts voters to the target's 1-hop X2 neighborhood (falling back
//!    to the global vote, then to the rule-book default) — nearby carriers
//!    share propagation conditions and tuning culture, so locality
//!    improves accuracy.
//!
//! [`recommend`] exposes the cold-start API for genuinely new carriers;
//! [`accuracy`] implements the §4.2 evaluation (leave-one-out for the CF
//! learners); [`mismatch`] reproduces the Fig. 12 mismatch labeling;
//! [`datasets`] bridges snapshots to the classic baseline learners; and
//! [`perf`] implements the §6 performance-feedback extension
//! (performance-weighted voting).

pub mod accuracy;
pub mod cf;
pub mod datasets;
pub mod dependency;
pub mod legacy;
pub mod mismatch;
pub mod perf;
pub mod recommend;
pub mod scope;
pub mod voting;

pub use accuracy::{evaluate_cf, AccuracyReport, ParamAccuracy};
pub use cf::{
    fit_worker_threads, Basis, CfConfig, CfModel, DeltaApply, DeltaFitReport, FitOptions,
    ModelLoadError, Recommendation, SharedKeyColumns,
};
pub use dependency::{select_dependent, PredictorAttr, Side};
pub use mismatch::{label_for, MismatchLabel, MismatchReport};
pub use recommend::{recommend_pairwise, recommend_singular, ConfigRecommendation, NewCarrier};
pub use scope::Scope;
