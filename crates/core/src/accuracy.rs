//! The §4.2 evaluation: treat every carrier as if it were new, recommend,
//! and compare against its current configuration. For collaborative
//! filtering this is exact leave-one-out — the probe's own value is
//! removed from every vote it would participate in.

use crate::cf::{Basis, CfModel};
use crate::scope::Scope;
use auric_model::{NetworkSnapshot, ParamId, ParamKind};
use serde::{Deserialize, Serialize};

/// Accuracy of one parameter over a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamAccuracy {
    pub param: ParamId,
    pub correct: usize,
    pub total: usize,
    /// How many predictions came from each basis (local vote, global
    /// vote, group majority, global majority, default).
    pub by_basis: [usize; 5],
}

impl ParamAccuracy {
    /// Accuracy ratio; 1.0 for an empty scope (nothing to get wrong).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total as f64
    }
}

/// Evaluation summary over all parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccuracyReport {
    pub per_param: Vec<ParamAccuracy>,
}

impl AccuracyReport {
    /// Micro-average: pooled correct / pooled total (the paper's
    /// "accuracy across N configuration parameter values").
    pub fn micro_accuracy(&self) -> f64 {
        let correct: usize = self.per_param.iter().map(|p| p.correct).sum();
        let total: usize = self.per_param.iter().map(|p| p.total).sum();
        if total == 0 {
            return 1.0;
        }
        correct as f64 / total as f64
    }

    /// Macro-average: mean of per-parameter accuracies (Table 4's
    /// "average accuracy across all configuration parameters").
    pub fn macro_accuracy(&self) -> f64 {
        if self.per_param.is_empty() {
            return 1.0;
        }
        self.per_param.iter().map(|p| p.accuracy()).sum::<f64>() / self.per_param.len() as f64
    }

    /// Total evaluated slots.
    pub fn total_values(&self) -> usize {
        self.per_param.iter().map(|p| p.total).sum()
    }
}

fn basis_slot(b: Basis) -> usize {
    match b {
        Basis::LocalVote => 0,
        Basis::GlobalVote => 1,
        Basis::GroupMajority => 2,
        Basis::GlobalMajority => 3,
        Basis::Default => 4,
    }
}

/// Evaluates a fitted CF model over `scope` with leave-one-out semantics.
/// `local = true` runs the §3.3 local learner (1-hop X2 voting first);
/// `local = false` runs the pure global learner. Parameters are evaluated
/// in parallel.
pub fn evaluate_cf(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    model: &CfModel,
    local: bool,
) -> AccuracyReport {
    // Work-stealing over parameters: pair-wise parameters are an order of
    // magnitude more work than singular ones, so static chunks leave
    // threads idle. The pool reassembles results in parameter order.
    let per_param = crate::cf::parallel_map(snapshot.catalog.len(), |i| {
        evaluate_param(snapshot, scope, model, ParamId(i as u16), local)
    });
    AccuracyReport { per_param }
}

/// Evaluates one parameter.
pub fn evaluate_param(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    model: &CfModel,
    param: ParamId,
    local: bool,
) -> ParamAccuracy {
    let mut acc = ParamAccuracy {
        param,
        correct: 0,
        total: 0,
        by_basis: [0; 5],
    };
    match snapshot.catalog.def(param).kind {
        ParamKind::Singular => {
            for &c in &scope.carriers {
                let current = snapshot.config.value(param, c);
                let rec = if local {
                    model.recommend_local_singular(snapshot, param, c, true)
                } else {
                    // Column fast path: no per-probe key projection.
                    model.recommend_global_for_carrier(snapshot, param, c, Some(current))
                };
                acc.total += 1;
                acc.by_basis[basis_slot(rec.basis)] += 1;
                acc.correct += usize::from(rec.value == current);
            }
        }
        ParamKind::Pairwise => {
            for &q in &scope.pairs {
                let current = snapshot.config.pair_value(param, q);
                let rec = if local {
                    model.recommend_local_pair(snapshot, param, q, true)
                } else {
                    model.recommend_global_for_pair(snapshot, param, q, Some(current))
                };
                acc.total += 1;
                acc.by_basis[basis_slot(rec.basis)] += 1;
                acc.correct += usize::from(rec.value == current);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::CfConfig;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn clean_network_scores_high_and_local_beats_global_with_pockets() {
        let knobs = TuningKnobs {
            pocket_prob: 0.8,
            ..TuningKnobs::none()
        };
        let net = generate(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 14,
                seed: 2,
            },
            &knobs,
        );
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let global = evaluate_cf(snap, &scope, &model, false);
        let local = evaluate_cf(snap, &scope, &model, true);
        assert!(
            global.micro_accuracy() > 0.80,
            "global {}",
            global.micro_accuracy()
        );
        assert!(
            local.micro_accuracy() >= global.micro_accuracy(),
            "local {} < global {}",
            local.micro_accuracy(),
            global.micro_accuracy()
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let report = evaluate_cf(snap, &scope, &model, true);
        assert_eq!(report.per_param.len(), snap.catalog.len());
        for pa in &report.per_param {
            assert!(pa.correct <= pa.total);
            assert_eq!(pa.by_basis.iter().sum::<usize>(), pa.total);
        }
        assert_eq!(
            report.total_values(),
            snap.catalog.singular_ids().count() * snap.n_carriers()
                + snap.catalog.pairwise_ids().count() * snap.x2.n_pairs()
        );
        assert!(report.micro_accuracy() <= 1.0);
        assert!(report.macro_accuracy() <= 1.0);
    }

    #[test]
    fn market_scope_evaluates_only_that_market() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let m = snap.markets[0].id;
        let scope = Scope::market(snap, m);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let report = evaluate_cf(snap, &scope, &model, false);
        let expected = snap.catalog.singular_ids().count() * scope.n_carriers()
            + snap.catalog.pairwise_ids().count() * scope.n_pairs();
        assert_eq!(report.total_values(), expected);
    }

    #[test]
    fn empty_report_conventions() {
        let r = AccuracyReport { per_param: vec![] };
        assert_eq!(r.micro_accuracy(), 1.0);
        assert_eq!(r.macro_accuracy(), 1.0);
        let pa = ParamAccuracy {
            param: ParamId(0),
            correct: 0,
            total: 0,
            by_basis: [0; 5],
        };
        assert_eq!(pa.accuracy(), 1.0);
    }
}
