//! Bridges network snapshots to the classic baseline learners: one
//! categorical [`Dataset`] per (parameter, scope), matching §4.1's setup —
//! singular parameters use the carrier's attributes as predictors,
//! pair-wise parameters the concatenated attributes of both endpoints.

use crate::scope::Scope;
use auric_learners::Dataset;
use auric_model::{AttrArena, NetworkSnapshot, ParamId, ParamKind};
use std::sync::Arc;

/// Builds the training dataset for `param` over `scope`.
///
/// Rows carry explicit schema cardinalities so folds agree on attribute
/// spaces even when a rare level is absent from a split. Builds a private
/// arena; loops over many parameters should build one
/// [`AttrArena`] and call [`dataset_for_param_in`].
pub fn dataset_for_param(snapshot: &NetworkSnapshot, scope: &Scope, param: ParamId) -> Dataset {
    let arena = AttrArena::from_snapshot(snapshot);
    dataset_for_param_in(&arena, snapshot, scope, param)
}

/// [`dataset_for_param`] reading attribute levels from a prebuilt shared
/// arena. Whole-network singular datasets alias the arena's columns
/// zero-copy; scoped and pairwise datasets gather per column instead of
/// cloning (and doubling, for pairs) every carrier's attr row.
pub fn dataset_for_param_in(
    arena: &AttrArena,
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
) -> Dataset {
    let schema_cards: Vec<usize> = snapshot
        .schema
        .attr_ids()
        .map(|a| snapshot.schema.cardinality(a))
        .collect();
    match snapshot.catalog.def(param).kind {
        ParamKind::Singular => {
            let whole = scope.carriers.len() == arena.n_carriers();
            debug_assert!(
                !whole
                    || scope
                        .carriers
                        .iter()
                        .enumerate()
                        .all(|(i, c)| c.index() == i),
                "scope carriers are ascending, so full length means identity"
            );
            let columns: Vec<Arc<[u16]>> = snapshot
                .schema
                .attr_ids()
                .map(|a| {
                    if whole {
                        arena.column_arc(a)
                    } else {
                        let col = arena.column(a);
                        Arc::from(
                            scope
                                .carriers
                                .iter()
                                .map(|&c| col[c.index()])
                                .collect::<Vec<u16>>(),
                        )
                    }
                })
                .collect();
            let values: Vec<u16> = scope
                .carriers
                .iter()
                .map(|&c| snapshot.config.value(param, c))
                .collect();
            Dataset::from_columns(columns, values, Some(schema_cards))
        }
        ParamKind::Pairwise => {
            let mut cards = schema_cards.clone();
            cards.extend(&schema_cards);
            // Endpoint-major column order: src attrs then dst attrs, the
            // same layout as the old concatenated rows.
            let gather = |ends: &[u32], out: &mut Vec<Arc<[u16]>>| {
                for a in snapshot.schema.attr_ids() {
                    let col = arena.column(a);
                    out.push(Arc::from(
                        scope
                            .pairs
                            .iter()
                            .map(|&q| col[ends[q as usize] as usize])
                            .collect::<Vec<u16>>(),
                    ));
                }
            };
            let mut columns: Vec<Arc<[u16]>> = Vec::with_capacity(2 * snapshot.schema.n_attrs());
            gather(arena.pair_src(), &mut columns);
            gather(arena.pair_dst(), &mut columns);
            let values: Vec<u16> = scope
                .pairs
                .iter()
                .map(|&q| snapshot.config.pair_value(param, q))
                .collect();
            Dataset::from_columns(columns, values, Some(cards))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn singular_dataset_shape() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let p = snap.catalog.singular_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), snap.n_carriers());
        assert_eq!(d.n_cols(), snap.schema.n_attrs());
        // Labels round-trip to the stored values.
        for (i, &c) in scope.carriers.iter().enumerate() {
            assert_eq!(d.raw_label(i), snap.config.value(p, c));
        }
    }

    #[test]
    fn pairwise_dataset_concatenates_endpoints() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let p = snap.catalog.pairwise_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), snap.x2.n_pairs());
        assert_eq!(d.n_cols(), 2 * snap.schema.n_attrs());
        let (j, k) = snap.x2.pair(scope.pairs[0]);
        let row = d.row_vec(0);
        assert_eq!(
            &row[..snap.schema.n_attrs()],
            snap.carrier(j).attrs.as_slice()
        );
        assert_eq!(
            &row[snap.schema.n_attrs()..],
            snap.carrier(k).attrs.as_slice()
        );
    }

    #[test]
    fn whole_scope_singular_dataset_aliases_the_arena() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let arena = AttrArena::from_snapshot(snap);
        let scope = Scope::whole(snap);
        let p = snap.catalog.singular_ids().next().unwrap();
        let d = dataset_for_param_in(&arena, snap, &scope, p);
        for (j, a) in snap.schema.attr_ids().enumerate() {
            assert!(
                Arc::ptr_eq(&d.column_arc(j), &arena.column_arc(a)),
                "column {j} is a copy, not an alias"
            );
        }
        // And the arena-built dataset matches the compat constructor path.
        let via_compat = dataset_for_param(snap, &scope, p);
        assert_eq!(d, via_compat);
    }

    #[test]
    fn market_scope_restricts_rows() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let m = snap.markets[0].id;
        let scope = Scope::market(snap, m);
        let p = snap.catalog.singular_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), scope.n_carriers());
    }
}
