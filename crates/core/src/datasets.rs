//! Bridges network snapshots to the classic baseline learners: one
//! categorical [`Dataset`] per (parameter, scope), matching §4.1's setup —
//! singular parameters use the carrier's attributes as predictors,
//! pair-wise parameters the concatenated attributes of both endpoints.

use crate::scope::Scope;
use auric_learners::Dataset;
use auric_model::{NetworkSnapshot, ParamId, ParamKind};

/// Builds the training dataset for `param` over `scope`.
///
/// Rows carry explicit schema cardinalities so folds agree on attribute
/// spaces even when a rare level is absent from a split.
pub fn dataset_for_param(snapshot: &NetworkSnapshot, scope: &Scope, param: ParamId) -> Dataset {
    let schema_cards: Vec<usize> = snapshot
        .schema
        .attr_ids()
        .map(|a| snapshot.schema.cardinality(a))
        .collect();
    match snapshot.catalog.def(param).kind {
        ParamKind::Singular => {
            let rows: Vec<Vec<u16>> = scope
                .carriers
                .iter()
                .map(|&c| snapshot.carrier(c).attrs.as_slice().to_vec())
                .collect();
            let values: Vec<u16> = scope
                .carriers
                .iter()
                .map(|&c| snapshot.config.value(param, c))
                .collect();
            Dataset::new(rows, values, Some(schema_cards))
        }
        ParamKind::Pairwise => {
            let mut cards = schema_cards.clone();
            cards.extend(&schema_cards);
            let rows: Vec<Vec<u16>> = scope
                .pairs
                .iter()
                .map(|&q| {
                    let (j, k) = snapshot.x2.pair(q);
                    let mut row = snapshot.carrier(j).attrs.as_slice().to_vec();
                    row.extend_from_slice(snapshot.carrier(k).attrs.as_slice());
                    row
                })
                .collect();
            let values: Vec<u16> = scope
                .pairs
                .iter()
                .map(|&q| snapshot.config.pair_value(param, q))
                .collect();
            Dataset::new(rows, values, Some(cards))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn singular_dataset_shape() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let p = snap.catalog.singular_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), snap.n_carriers());
        assert_eq!(d.n_cols(), snap.schema.n_attrs());
        // Labels round-trip to the stored values.
        for (i, &c) in scope.carriers.iter().enumerate() {
            assert_eq!(d.raw_label(i), snap.config.value(p, c));
        }
    }

    #[test]
    fn pairwise_dataset_concatenates_endpoints() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let p = snap.catalog.pairwise_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), snap.x2.n_pairs());
        assert_eq!(d.n_cols(), 2 * snap.schema.n_attrs());
        let (j, k) = snap.x2.pair(scope.pairs[0]);
        let row = d.row(0);
        assert_eq!(
            &row[..snap.schema.n_attrs()],
            snap.carrier(j).attrs.as_slice()
        );
        assert_eq!(
            &row[snap.schema.n_attrs()..],
            snap.carrier(k).attrs.as_slice()
        );
    }

    #[test]
    fn market_scope_restricts_rows() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let m = snap.markets[0].id;
        let scope = Scope::market(snap, m);
        let p = snap.catalog.singular_ids().next().unwrap();
        let d = dataset_for_param(snap, &scope, p);
        assert_eq!(d.n_rows(), scope.n_carriers());
    }
}
