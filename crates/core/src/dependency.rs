//! Dependency learning: chi-square tests of independence between carrier
//! attributes and configuration parameters (§3.2, Eq. 3–4, Fig. 9).
//!
//! For each parameter, candidate attributes are tested against the
//! parameter's value distribution over the learning scope; those whose
//! statistic exceeds the critical value at the chosen significance level
//! (`p = 0.01` in the paper) are *dependent*. This is the step that
//! "eliminates the irrelevant attributes", which §3.2 credits for
//! collaborative filtering beating distance-based learners.
//!
//! **Redundancy control.** Carrier attributes are heavily correlated
//! (tracking areas nest inside markets, bandwidth tracks the frequency
//! band, hardware tracks the vendor, ...), so at operational sample sizes
//! a marginal chi-square test flags nearly *every* attribute — and an
//! exact-match key over two dozen attributes fragments the vote groups
//! into singletons. We therefore select greedily: attributes are ranked by
//! marginal statistic, and each is admitted only if it is still
//! significant *conditional on* the attributes already selected
//! (a stratified Cochran–Mantel–Haenszel-style sum of per-stratum
//! chi-square statistics). A redundant correlate carries no conditional
//! information and is dropped; a genuinely complementary attribute
//! survives. The marginal-only variant is kept as
//! [`select_dependent_marginal`] for the ablation benches.

use crate::scope::Scope;
use auric_model::{AttrArena, AttrId, AttrValue, NetworkSnapshot, ParamId, ParamKind};
use auric_stats::chi2::chi2_critical;
use auric_stats::contingency::ContingencyTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which endpoint of a directed pair an attribute is read from. Singular
/// parameters only use [`Side::Src`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    Src,
    Dst,
}

/// One predictor attribute: an attribute read from one side of the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PredictorAttr {
    pub side: Side,
    pub attr: AttrId,
}

impl PredictorAttr {
    /// Shorthand for a source-side attribute.
    pub fn src(attr: AttrId) -> Self {
        Self {
            side: Side::Src,
            attr,
        }
    }

    /// Shorthand for a neighbor-side attribute.
    pub fn dst(attr: AttrId) -> Self {
        Self {
            side: Side::Dst,
            attr,
        }
    }
}

/// The per-sample view the tests run over: one dense value column plus the
/// shared arena the candidate level columns are read from.
///
/// Candidate levels are **not** materialized up front — with 28 candidates
/// over 2.2M pairwise samples that private copy is ~120 MB per concurrent
/// job. Instead one scratch buffer per job ([`Samples::levels_into`]) is
/// refilled from the arena column for whichever candidate is under test.
struct Samples<'a> {
    /// Dense value column index per sample.
    values: Vec<usize>,
    n_value_cols: usize,
    candidates: Vec<PredictorAttr>,
    cards: Vec<usize>,
    arena: &'a AttrArena,
    scope: &'a Scope,
    kind: ParamKind,
}

/// Materializes the value column of `param` over `scope`; candidate levels
/// stay in `arena`.
fn collect_samples<'a>(
    arena: &'a AttrArena,
    snapshot: &NetworkSnapshot,
    scope: &'a Scope,
    param: ParamId,
) -> Samples<'a> {
    let kind = snapshot.catalog.def(param).kind;
    let raw_values: Vec<u16> = match kind {
        ParamKind::Singular => scope
            .carriers
            .iter()
            .map(|&c| snapshot.config.value(param, c))
            .collect(),
        ParamKind::Pairwise => scope
            .pairs
            .iter()
            .map(|&p| snapshot.config.pair_value(param, p))
            .collect(),
    };
    let mut value_col: HashMap<u16, usize> = HashMap::new();
    let mut values = Vec::with_capacity(raw_values.len());
    for v in raw_values {
        let next = value_col.len();
        values.push(*value_col.entry(v).or_insert(next));
    }

    let candidates: Vec<PredictorAttr> = match kind {
        ParamKind::Singular => snapshot.schema.attr_ids().map(PredictorAttr::src).collect(),
        ParamKind::Pairwise => snapshot
            .schema
            .attr_ids()
            .map(PredictorAttr::src)
            .chain(snapshot.schema.attr_ids().map(PredictorAttr::dst))
            .collect(),
    };
    let cards = candidates
        .iter()
        .map(|pa| snapshot.schema.cardinality(pa.attr))
        .collect();
    Samples {
        values,
        n_value_cols: value_col.len(),
        candidates,
        cards,
        arena,
        scope,
        kind,
    }
}

impl Samples<'_> {
    /// Number of samples.
    fn len(&self) -> usize {
        self.values.len()
    }

    /// Gathers candidate `c`'s level per sample into `out` (cleared
    /// first) from the shared arena column.
    fn levels_into(&self, c: usize, out: &mut Vec<AttrValue>) {
        out.clear();
        let pa = self.candidates[c];
        let col = self.arena.column(pa.attr);
        match self.kind {
            ParamKind::Singular => {
                out.extend(self.scope.carriers.iter().map(|&c| col[c.index()]));
            }
            ParamKind::Pairwise => {
                let ends = match pa.side {
                    Side::Src => self.arena.pair_src(),
                    Side::Dst => self.arena.pair_dst(),
                };
                out.extend(
                    self.scope
                        .pairs
                        .iter()
                        .map(|&p| col[ends[p as usize] as usize]),
                );
            }
        }
    }
}

/// Marginal chi-square statistic of candidate `c` (Eq. 3 over the full
/// contingency table). `levels` is the candidate's gathered level column.
/// Returns `(statistic, dependent)`.
fn marginal_test(samples: &Samples, levels: &[AttrValue], c: usize, alpha: f64) -> (f64, bool) {
    let mut table = ContingencyTable::new(samples.cards[c], samples.n_value_cols);
    for (i, &vcol) in samples.values.iter().enumerate() {
        table.add(levels[i] as usize, vcol, 1);
    }
    let test = table.independence_test(alpha);
    (test.statistic, test.dependent)
}

/// The stratification of the samples by the currently selected
/// attributes, maintained incrementally as the greedy selection grows.
///
/// Strata are interned to dense ids (first-appearance order, so the
/// result is deterministic), and samples falling in strata too small to
/// ever pass the Cochran guard below (fewer than 5 observations cannot
/// support even one effective degree of freedom) are filtered out once
/// per refinement instead of being hashed into a fresh
/// `HashMap<Vec<AttrValue>, ContingencyTable>` on every candidate test.
/// With exact-match keys most strata are tiny, so this prefilter — plus
/// indexing contingency tables by stratum id instead of by key vector —
/// is what makes the conditional pass cheap at evaluation scale.
struct Strata {
    /// Stratum id per sample, over *all* samples.
    ids: Vec<u32>,
    n_strata: usize,
    /// Active sample indices (stratum has ≥ 5 observations), grouped by
    /// compact stratum: `order[starts[t]..starts[t+1]]` is compact stratum
    /// `t`'s samples, each group in ascending sample order.
    order: Vec<u32>,
    starts: Vec<u32>,
    /// Stratum id → compact table index, `u32::MAX` for filtered strata.
    compact: Vec<u32>,
    n_compact: usize,
}

impl Strata {
    fn root(n_samples: usize) -> Self {
        let mut s = Self {
            ids: vec![0; n_samples],
            n_strata: 1,
            order: Vec::new(),
            starts: Vec::new(),
            compact: Vec::new(),
            n_compact: 0,
        };
        s.requalify();
        s
    }

    /// Splits every stratum by the levels of a newly admitted attribute.
    /// Partitions identically to keying on the full selected level
    /// vector: two samples share a stratum iff they shared one before
    /// *and* agree on the new attribute.
    fn refine(&mut self, levels: &[AttrValue]) {
        let mut intern: HashMap<u64, u32> = HashMap::with_capacity(self.n_strata * 2);
        for (id, &lv) in self.ids.iter_mut().zip(levels) {
            let key = ((*id as u64) << 16) | lv as u64;
            let next = intern.len() as u32;
            *id = *intern.entry(key).or_insert(next);
        }
        self.n_strata = intern.len();
        self.requalify();
    }

    /// Recomputes the compact stratum mapping and the stratum-grouped
    /// sample order (a counting sort over compact ids: per-stratum
    /// offsets, then one scatter pass in ascending sample order).
    fn requalify(&mut self) {
        let mut counts = vec![0u32; self.n_strata];
        for &id in &self.ids {
            counts[id as usize] += 1;
        }
        self.compact.clear();
        self.compact.resize(self.n_strata, u32::MAX);
        self.n_compact = 0;
        let mut n_active = 0u32;
        for (s, &ct) in counts.iter().enumerate() {
            if ct >= 5 {
                self.compact[s] = self.n_compact as u32;
                self.n_compact += 1;
                n_active += ct;
            }
        }
        self.starts.clear();
        self.starts.reserve(self.n_compact + 1);
        let mut acc = 0u32;
        for &ct in counts.iter() {
            // starts indexed by compact id: push only qualified strata, in
            // stratum-id order (compact ids are assigned in that order).
            if ct >= 5 {
                self.starts.push(acc);
                acc += ct;
            }
        }
        self.starts.push(acc);
        debug_assert_eq!(acc, n_active);
        self.order.clear();
        self.order.resize(n_active as usize, 0);
        let mut cursor: Vec<u32> = self.starts[..self.n_compact].to_vec();
        for (i, &id) in self.ids.iter().enumerate() {
            let t = self.compact[id as usize];
            if t == u32::MAX {
                continue;
            }
            self.order[cursor[t as usize] as usize] = i as u32;
            cursor[t as usize] += 1;
        }
    }

    /// Active samples of compact stratum `t`, ascending.
    fn stratum(&self, t: usize) -> &[u32] {
        &self.order[self.starts[t] as usize..self.starts[t + 1] as usize]
    }
}

/// Conditional test of candidate `c` given the selected attributes:
/// samples are stratified by the selected key; per-stratum chi-square
/// statistics and effective degrees of freedom are summed, and the total
/// is compared to the critical value at `alpha`.
///
/// One table sized to the candidate is swept across the strata in compact
/// order (the stratum-grouped `Strata::order` makes each stratum's samples
/// contiguous). Allocating a dense table *per stratum* — the previous
/// shape — is the paper-scale RSS cliff: exact-match keys shatter 2.2M
/// samples into hundreds of thousands of strata, and a dense
/// `cards × n_value_cols` table for each, per candidate, per concurrent
/// worker, is tens of gigabytes. Per-stratum table contents and the
/// stratum summation order are unchanged, so the accept/reject decision is
/// bit-identical.
fn conditional_test(
    samples: &Samples,
    levels: &[AttrValue],
    c: usize,
    strata: &Strata,
    alpha: f64,
) -> bool {
    let mut table = ContingencyTable::new(samples.cards[c], samples.n_value_cols);
    let mut stat = 0.0;
    let mut df = 0usize;
    for t in 0..strata.n_compact {
        table.reset();
        for &i in strata.stratum(t) {
            let i = i as usize;
            table.add(levels[i] as usize, samples.values[i], 1);
        }
        let d = table.effective_df();
        if d == 0 {
            continue;
        }
        // Cochran-style small-sample guard: a sparse stratum's chi-square
        // is anti-conservative (expected counts well under 5), and at
        // per-market sample sizes that admits spurious correlates which
        // fragment the vote groups. Require a sane observations-per-cell
        // budget before a stratum contributes evidence. (Strata under 5
        // observations were already filtered out of `order` — they can
        // never satisfy `total ≥ 5·d` for d ≥ 1.)
        if table.total() < 5 * d as u64 {
            continue;
        }
        stat += table.chi2_statistic();
        df += d;
    }
    df > 0 && stat > chi2_critical(df, alpha)
}

/// Selects the dependent attributes for `param` over `scope` at
/// significance `alpha`, with greedy conditional redundancy control (see
/// module docs). The result is ordered by decreasing marginal statistic —
/// the key order of the vote tables.
///
/// Singular parameters test the carrier's own attributes; pair-wise
/// parameters test both endpoints' (§4.1).
pub fn select_dependent(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
) -> Vec<PredictorAttr> {
    select_dependent_with_obs(
        snapshot,
        scope,
        param,
        alpha,
        &auric_obs::Recorder::disabled(),
    )
}

/// [`select_dependent`] with chi-square test counts recorded to `obs`
/// (`cf.dep.marginal_tests` / `cf.dep.conditional_tests`).
///
/// Builds a private [`AttrArena`]; fit loops that run one selection per
/// parameter should build the arena once and call
/// [`select_dependent_with_obs_in`].
pub fn select_dependent_with_obs(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
    obs: &auric_obs::Recorder,
) -> Vec<PredictorAttr> {
    let arena = AttrArena::from_snapshot(snapshot);
    select_dependent_with_obs_in(&arena, snapshot, scope, param, alpha, obs)
}

/// [`select_dependent_with_obs`] reading candidate levels through a
/// prebuilt shared arena.
pub fn select_dependent_with_obs_in(
    arena: &AttrArena,
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
    obs: &auric_obs::Recorder,
) -> Vec<PredictorAttr> {
    let samples = collect_samples(arena, snapshot, scope, param);
    if samples.values.is_empty() {
        return Vec::new();
    }
    // Rank the marginally significant candidates. One level buffer sized
    // to the scope is the job's whole per-candidate working set.
    obs.add("cf.dep.marginal_tests", samples.candidates.len() as u64);
    obs.gauge_max(
        "cf.dep.scratch.bytes",
        (samples.len() * std::mem::size_of::<AttrValue>()) as u64,
    );
    let mut levels: Vec<AttrValue> = Vec::with_capacity(samples.len());
    let mut ranked: Vec<(usize, f64)> = (0..samples.candidates.len())
        .filter_map(|c| {
            samples.levels_into(c, &mut levels);
            let (stat, dependent) = marginal_test(&samples, &levels, c, alpha);
            dependent.then_some((c, stat))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    // Greedy conditional admission. The stratification only changes when
    // a candidate is admitted, so it is refined incrementally rather than
    // rebuilt per test.
    let mut selected: Vec<usize> = Vec::new();
    let mut strata = Strata::root(samples.len());
    for &(c, _) in &ranked {
        samples.levels_into(c, &mut levels);
        let admit = if selected.is_empty() {
            true
        } else {
            obs.inc("cf.dep.conditional_tests");
            conditional_test(&samples, &levels, c, &strata, alpha)
        };
        if admit {
            strata.refine(&levels);
            selected.push(c);
        }
    }
    selected.iter().map(|&c| samples.candidates[c]).collect()
}

/// The paper's literal marginal selection (no redundancy control), kept
/// for the ablation benches.
pub fn select_dependent_marginal(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
) -> Vec<PredictorAttr> {
    select_dependent_marginal_with_obs(
        snapshot,
        scope,
        param,
        alpha,
        &auric_obs::Recorder::disabled(),
    )
}

/// [`select_dependent_marginal`] with marginal test counts recorded.
pub fn select_dependent_marginal_with_obs(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
    obs: &auric_obs::Recorder,
) -> Vec<PredictorAttr> {
    let arena = AttrArena::from_snapshot(snapshot);
    select_dependent_marginal_with_obs_in(&arena, snapshot, scope, param, alpha, obs)
}

/// [`select_dependent_marginal_with_obs`] reading candidate levels through
/// a prebuilt shared arena.
pub fn select_dependent_marginal_with_obs_in(
    arena: &AttrArena,
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
    obs: &auric_obs::Recorder,
) -> Vec<PredictorAttr> {
    let samples = collect_samples(arena, snapshot, scope, param);
    obs.add("cf.dep.marginal_tests", samples.candidates.len() as u64);
    let mut levels: Vec<AttrValue> = Vec::with_capacity(samples.len());
    (0..samples.candidates.len())
        .filter(|&c| {
            samples.levels_into(c, &mut levels);
            marginal_test(&samples, &levels, c, alpha).1
        })
        .map(|c| samples.candidates[c])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, rules::Side as GenSide, NetScale, TuningKnobs};

    #[test]
    fn recovers_planted_singular_dependencies() {
        // On a clean network the selected set must (mostly) contain the
        // planted relevant attributes — or correlates that carry the same
        // information, which we verify downstream via voting accuracy.
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let mut missed = 0usize;
        let mut planted = 0usize;
        for p in snap.catalog.singular_ids() {
            let rule = &net.truth.rules[p.index()];
            let distinct = auric_stats::freq::distinct_count(snap.config.values_of(p));
            if distinct < 2 {
                continue;
            }
            let marginal = select_dependent_marginal(snap, &scope, p, 0.01);
            for ra in &rule.relevant {
                assert_eq!(ra.side, GenSide::Src);
                planted += 1;
                if !marginal
                    .iter()
                    .any(|d| d.attr == ra.attr && d.side == Side::Src)
                {
                    missed += 1;
                }
            }
        }
        assert!(planted > 0);
        assert!(
            (missed as f64) < 0.35 * planted as f64,
            "missed {missed} of {planted} planted dependencies"
        );
    }

    #[test]
    fn conditional_selection_is_much_sparser_than_marginal() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let mut marginal_total = 0usize;
        let mut conditional_total = 0usize;
        for p in snap.catalog.param_ids() {
            marginal_total += select_dependent_marginal(snap, &scope, p, 0.01).len();
            conditional_total += select_dependent(snap, &scope, p, 0.01).len();
        }
        assert!(
            conditional_total * 2 < marginal_total,
            "conditional {conditional_total} vs marginal {marginal_total}"
        );
    }

    #[test]
    fn pairwise_dependencies_include_neighbor_side() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let mut any_dst_planted = false;
        let mut any_dst_found = false;
        for p in snap.catalog.pairwise_ids() {
            let rule = &net.truth.rules[p.index()];
            if !rule.relevant.iter().any(|r| r.side == GenSide::Dst) {
                continue;
            }
            any_dst_planted = true;
            let dependent = select_dependent(snap, &scope, p, 0.01);
            if dependent.iter().any(|d| d.side == Side::Dst) {
                any_dst_found = true;
                break;
            }
        }
        assert!(any_dst_planted);
        assert!(
            any_dst_found,
            "no neighbor-side dependence discovered at all"
        );
    }

    #[test]
    fn constant_parameter_has_no_dependencies() {
        let mut net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &mut net.snapshot;
        let p = snap.catalog.singular_ids().next().unwrap();
        for i in 0..snap.n_carriers() {
            snap.config.set_value(
                p,
                auric_model::CarrierId::from_index(i),
                1,
                auric_model::Provenance::Rule,
            );
        }
        let scope = Scope::whole(snap);
        assert!(select_dependent(snap, &scope, p, 0.01).is_empty());
        assert!(select_dependent_marginal(snap, &scope, p, 0.01).is_empty());
    }

    #[test]
    fn stricter_alpha_selects_fewer_marginal_attributes() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        for p in snap.catalog.singular_ids().take(10) {
            let loose = select_dependent_marginal(snap, &scope, p, 0.05).len();
            let strict = select_dependent_marginal(snap, &scope, p, 0.0001).len();
            assert!(strict <= loose, "{p}: strict {strict} > loose {loose}");
        }
    }

    #[test]
    fn selection_order_is_by_marginal_strength() {
        // The first selected attribute must be the marginally strongest
        // (it is admitted unconditionally).
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        for p in snap.catalog.singular_ids().take(5) {
            let sel = select_dependent(snap, &scope, p, 0.01);
            let marg = select_dependent_marginal(snap, &scope, p, 0.01);
            if let Some(first) = sel.first() {
                assert!(marg.contains(first));
            }
        }
    }
}
