//! Reference implementation of the recommender with unpacked `Vec<u16>`
//! vote keys — the representation the packed hot path (see [`crate::cf`])
//! replaced.
//!
//! Kept for two reasons:
//!
//! - **differential testing**: the equivalence suite fits both models on
//!   the same snapshot and asserts bit-identical [`Recommendation`]s for
//!   every parameter, learner flavor, and leave-one-out setting;
//! - **benchmarking**: the `bench_cf` binary measures the packed path
//!   against this baseline on the same build, so reported speedups are
//!   representation effects, not compiler-flag effects.
//!
//! The logic here must mirror `cf.rs` exactly; behavioral changes belong
//! in both places or (preferably) only in `cf.rs` with the equivalence
//! tests updated to spell out the intended divergence.

use crate::cf::{Basis, CfConfig, Recommendation};
use crate::dependency::{PredictorAttr, Side};
use crate::scope::Scope;
use auric_model::{
    AttrId, AttrValue, AttrVec, CarrierId, NetworkSnapshot, PairIdx, ParamId, ParamKind, ValueIdx,
};
use auric_stats::chi2::chi2_critical;
use auric_stats::contingency::ContingencyTable;
use auric_stats::freq::FreqTable;
use std::collections::HashMap;

/// Unpacked group key: the target's levels on the dependent attributes.
pub type LegacyVoteKey = Vec<u16>;

/// Vote tables keyed by unpacked attribute-level vectors.
#[derive(Debug, Clone, Default)]
pub struct LegacyVoteTables {
    groups: HashMap<LegacyVoteKey, FreqTable>,
    overall: FreqTable,
}

impl LegacyVoteTables {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, key: LegacyVoteKey, value: ValueIdx) {
        self.groups.entry(key).or_default().add(value);
        self.overall.add(value);
    }

    pub fn group(&self, key: &[u16]) -> Option<&FreqTable> {
        self.groups.get(key)
    }

    pub fn overall(&self) -> &FreqTable {
        &self.overall
    }

    pub fn vote(
        &self,
        key: &[u16],
        exclude: Option<ValueIdx>,
        threshold: f64,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, threshold)
    }

    pub fn group_majority(
        &self,
        key: &[u16],
        exclude: Option<ValueIdx>,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, 0.0)
    }

    pub fn overall_majority(&self, exclude: Option<ValueIdx>) -> Option<ValueIdx> {
        self.overall
            .majority_with_support_excluding(exclude, 0.0)
            .map(|(v, _, _)| v)
    }
}

/// Per-parameter fitted state, unpacked representation.
#[derive(Debug, Clone)]
pub struct LegacyParamCf {
    pub param: ParamId,
    pub dependent: Vec<PredictorAttr>,
    pub tables: LegacyVoteTables,
    prefix_tables: Vec<LegacyVoteTables>,
    pub default: ValueIdx,
}

impl LegacyParamCf {
    pub fn key_for_carrier(&self, attrs: &AttrVec) -> LegacyVoteKey {
        self.dependent
            .iter()
            .map(|pa| {
                debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
                attrs.get(pa.attr)
            })
            .collect()
    }

    pub fn key_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> LegacyVoteKey {
        self.dependent
            .iter()
            .map(|pa| match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            })
            .collect()
    }
}

/// The pre-packing model: sequential fit, unpacked keys throughout.
#[derive(Debug, Clone)]
pub struct LegacyCfModel {
    pub config: CfConfig,
    params: Vec<LegacyParamCf>,
}

impl LegacyCfModel {
    /// Fits every parameter sequentially (the baseline deliberately keeps
    /// single-threaded, allocation-heavy behavior for comparison).
    pub fn fit(snapshot: &NetworkSnapshot, scope: &Scope, config: CfConfig) -> Self {
        let params = (0..snapshot.catalog.len())
            .map(|i| fit_param(snapshot, scope, ParamId(i as u16), &config))
            .collect();
        Self { config, params }
    }

    pub fn param(&self, p: ParamId) -> &LegacyParamCf {
        &self.params[p.index()]
    }

    pub fn params(&self) -> &[LegacyParamCf] {
        &self.params
    }

    pub fn recommend_global(
        &self,
        param: ParamId,
        key: &[u16],
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if let Some((value, support, voters)) = pc.tables.vote(key, exclude, self.config.support) {
            return Recommendation {
                value,
                basis: Basis::GlobalVote,
                support,
                voters,
            };
        }
        if let Some((value, support, voters)) = pc.tables.group_majority(key, exclude) {
            return Recommendation {
                value,
                basis: Basis::GroupMajority,
                support,
                voters,
            };
        }
        for l in (1..key.len()).rev() {
            let prefix = &key[..l];
            let tables = &pc.prefix_tables[l];
            let ex = exclude.filter(|&v| tables.group(prefix).is_some_and(|g| g.count(v) > 0));
            if let Some((value, support, voters)) = tables.group_majority(prefix, ex) {
                return Recommendation {
                    value,
                    basis: Basis::GroupMajority,
                    support,
                    voters,
                };
            }
        }
        let overall_exclude = exclude.filter(|&v| pc.tables.overall().count(v) > 0);
        if let Some(value) = pc.tables.overall_majority(overall_exclude) {
            return Recommendation {
                value,
                basis: Basis::GlobalMajority,
                support: 0,
                voters: 0,
            };
        }
        Recommendation {
            value: pc.default,
            basis: Basis::Default,
            support: 0,
            voters: 0,
        }
    }

    pub fn recommend_local_singular(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Singular);
        let pc = self.param(param);
        let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
        let mut table = FreqTable::new();
        for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
            let neighbor = snapshot.carrier(n);
            if pc.key_for_carrier(&neighbor.attrs) == key {
                table.add(snapshot.config.value(param, n));
            }
        }
        if let Some((value, support, total)) =
            table.majority_with_support_excluding(None, self.config.support)
        {
            return Recommendation {
                value,
                basis: Basis::LocalVote,
                support,
                voters: total,
            };
        }
        let exclude = loo.then(|| snapshot.config.value(param, carrier));
        self.recommend_global(param, &key, exclude)
    }

    pub fn recommend_local_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Pairwise);
        let pc = self.param(param);
        let (j, k) = snapshot.x2.pair(pair);
        let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
        let mut table = FreqTable::new();
        let mut sources = vec![j];
        sources.extend(snapshot.x2.k_hop_neighbors(j, self.config.hops));
        for src in sources {
            for q in snapshot.x2.pairs_from(src) {
                if q == pair {
                    continue; // never vote for ourselves
                }
                let (a, b) = snapshot.x2.pair(q);
                let qkey = pc.key_for_pair(&snapshot.carrier(a).attrs, &snapshot.carrier(b).attrs);
                if qkey == key {
                    table.add(snapshot.config.pair_value(param, q));
                }
            }
        }
        if let Some((value, support, total)) =
            table.majority_with_support_excluding(None, self.config.support)
        {
            return Recommendation {
                value,
                basis: Basis::LocalVote,
                support,
                voters: total,
            };
        }
        let exclude = loo.then(|| snapshot.config.pair_value(param, pair));
        self.recommend_global(param, &key, exclude)
    }
}

fn fit_param(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    config: &CfConfig,
) -> LegacyParamCf {
    let dependent = if config.marginal_selection {
        legacy_select_dependent_marginal(snapshot, scope, param, config.alpha)
    } else {
        legacy_select_dependent(snapshot, scope, param, config.alpha)
    };
    let def = snapshot.catalog.def(param);
    let n_prefixes = dependent.len();
    let mut pc = LegacyParamCf {
        param,
        dependent,
        tables: LegacyVoteTables::new(),
        prefix_tables: (0..n_prefixes).map(|_| LegacyVoteTables::new()).collect(),
        default: def.default,
    };
    let record = |pc: &mut LegacyParamCf, key: LegacyVoteKey, value: ValueIdx| {
        for l in 0..pc.prefix_tables.len() {
            pc.prefix_tables[l].add(key[..l].to_vec(), value);
        }
        pc.tables.add(key, value);
    };
    match def.kind {
        ParamKind::Singular => {
            for &c in &scope.carriers {
                let key = pc.key_for_carrier(&snapshot.carrier(c).attrs);
                let v = snapshot.config.value(param, c);
                record(&mut pc, key, v);
            }
        }
        ParamKind::Pairwise => {
            for &q in &scope.pairs {
                let (j, k) = snapshot.x2.pair(q);
                let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
                let v = snapshot.config.pair_value(param, q);
                record(&mut pc, key, v);
            }
        }
    }
    pc
}

// ---------------------------------------------------------------------------
// Frozen pre-optimization dependency selection
// ---------------------------------------------------------------------------
//
// `crate::dependency` now interns strata into dense ids and prefilters
// Cochran-ineligible strata before building any contingency table; the
// copy below is the original per-candidate `HashMap<Vec<AttrValue>, _>`
// stratification it replaced, kept verbatim so `LegacyCfModel::fit` times
// the genuine pre-PR baseline end to end. The selected sets must stay
// identical — the equivalence suite asserts it per parameter.

struct LegacySamples {
    values: Vec<usize>,
    n_value_cols: usize,
    levels: Vec<Vec<AttrValue>>,
    candidates: Vec<PredictorAttr>,
    cards: Vec<usize>,
}

fn legacy_collect_samples(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
) -> LegacySamples {
    let kind = snapshot.catalog.def(param).kind;
    let raw_values: Vec<u16> = match kind {
        ParamKind::Singular => scope
            .carriers
            .iter()
            .map(|&c| snapshot.config.value(param, c))
            .collect(),
        ParamKind::Pairwise => scope
            .pairs
            .iter()
            .map(|&p| snapshot.config.pair_value(param, p))
            .collect(),
    };
    let mut value_col: HashMap<u16, usize> = HashMap::new();
    let mut values = Vec::with_capacity(raw_values.len());
    for v in raw_values {
        let next = value_col.len();
        values.push(*value_col.entry(v).or_insert(next));
    }

    let candidates: Vec<PredictorAttr> = match kind {
        ParamKind::Singular => snapshot.schema.attr_ids().map(PredictorAttr::src).collect(),
        ParamKind::Pairwise => snapshot
            .schema
            .attr_ids()
            .map(PredictorAttr::src)
            .chain(snapshot.schema.attr_ids().map(PredictorAttr::dst))
            .collect(),
    };
    let cards = candidates
        .iter()
        .map(|pa| snapshot.schema.cardinality(pa.attr))
        .collect();
    let levels = candidates
        .iter()
        .map(|pa| level_column(snapshot, scope, kind, pa))
        .collect();
    LegacySamples {
        values,
        n_value_cols: value_col.len(),
        levels,
        candidates,
        cards,
    }
}

fn level_column(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    kind: ParamKind,
    pa: &PredictorAttr,
) -> Vec<AttrValue> {
    let attr: AttrId = pa.attr;
    match kind {
        ParamKind::Singular => scope
            .carriers
            .iter()
            .map(|&c| snapshot.carrier(c).attrs.get(attr))
            .collect(),
        ParamKind::Pairwise => scope
            .pairs
            .iter()
            .map(|&p| {
                let (j, k) = snapshot.x2.pair(p);
                match pa.side {
                    Side::Src => snapshot.carrier(j).attrs.get(attr),
                    Side::Dst => snapshot.carrier(k).attrs.get(attr),
                }
            })
            .collect(),
    }
}

fn legacy_marginal_test(samples: &LegacySamples, c: usize, alpha: f64) -> (f64, bool) {
    let mut table = ContingencyTable::new(samples.cards[c], samples.n_value_cols);
    for (i, &vcol) in samples.values.iter().enumerate() {
        table.add(samples.levels[c][i] as usize, vcol, 1);
    }
    let test = table.independence_test(alpha);
    (test.statistic, test.dependent)
}

fn legacy_conditional_test(
    samples: &LegacySamples,
    c: usize,
    selected: &[usize],
    alpha: f64,
) -> bool {
    let mut strata: HashMap<Vec<AttrValue>, ContingencyTable> = HashMap::new();
    for (i, &vcol) in samples.values.iter().enumerate() {
        let key: Vec<AttrValue> = selected.iter().map(|&s| samples.levels[s][i]).collect();
        strata
            .entry(key)
            .or_insert_with(|| ContingencyTable::new(samples.cards[c], samples.n_value_cols))
            .add(samples.levels[c][i] as usize, vcol, 1);
    }
    let mut stat = 0.0;
    let mut df = 0usize;
    for table in strata.values() {
        let d = table.effective_df();
        if d == 0 {
            continue;
        }
        if table.total() < 5 * d as u64 {
            continue;
        }
        stat += table.chi2_statistic();
        df += d;
    }
    df > 0 && stat > chi2_critical(df, alpha)
}

fn legacy_select_dependent(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
) -> Vec<PredictorAttr> {
    let samples = legacy_collect_samples(snapshot, scope, param);
    if samples.values.is_empty() {
        return Vec::new();
    }
    let mut ranked: Vec<(usize, f64)> = (0..samples.candidates.len())
        .filter_map(|c| {
            let (stat, dependent) = legacy_marginal_test(&samples, c, alpha);
            dependent.then_some((c, stat))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut selected: Vec<usize> = Vec::new();
    for &(c, _) in &ranked {
        if selected.is_empty() || legacy_conditional_test(&samples, c, &selected, alpha) {
            selected.push(c);
        }
    }
    selected.iter().map(|&c| samples.candidates[c]).collect()
}

fn legacy_select_dependent_marginal(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    alpha: f64,
) -> Vec<PredictorAttr> {
    let samples = legacy_collect_samples(snapshot, scope, param);
    (0..samples.candidates.len())
        .filter(|&c| legacy_marginal_test(&samples, c, alpha).1)
        .map(|c| samples.candidates[c])
        .collect()
}
