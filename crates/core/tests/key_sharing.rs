//! Pins the key-column sharing story behind `cf.fit.keycol.shared`.
//!
//! Within a single fit the gauge honestly reads ~0: dependency selection
//! orders each parameter's dependent attributes by its *own* marginal
//! association, so Table-1 layouts almost never collide inside one model
//! (at small scale, 64 of 65 ordered layouts are distinct). The real
//! reuse opportunity is **across fits of the same snapshot** — per-market
//! models and hot refits — where key columns span the whole fleet and are
//! byte-identical whenever two fits land on the same ordered layout.
//! [`SharedKeyColumns`] captures that; these tests pin it.

use auric_core::{CfConfig, CfModel, FitOptions, Scope, SharedKeyColumns};
use auric_netgen::{generate, NetScale, TuningKnobs};
use std::sync::Arc;

fn fit_market(
    net: &auric_netgen::GeneratedNetwork,
    market_idx: usize,
    cache: &SharedKeyColumns,
) -> CfModel {
    let snap = &net.snapshot;
    let scope = Scope::market(snap, snap.markets[market_idx].id);
    CfModel::fit_with(
        snap,
        &scope,
        CfConfig::default(),
        FitOptions {
            key_cache: Some(cache.clone()),
            ..FitOptions::default()
        },
    )
}

#[test]
fn cross_fit_layout_overlap_shares_physical_columns() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let cache = SharedKeyColumns::new();
    let m0 = fit_market(&net, 0, &cache);
    let first_built = cache.built();
    assert!(first_built > 0, "first fit must build columns");
    let m1 = fit_market(&net, 1, &cache);

    // Parameters whose ordered dependent layout matches across the two
    // market fits must hand out the *same physical allocation*, not a
    // rebuilt copy: columns cover the whole snapshot, not the fit scope.
    let mut overlap = 0;
    for (a, b) in m0.params().iter().zip(m1.params()) {
        if a.dependent != b.dependent {
            continue;
        }
        let (Some(ca), Some(cb)) = (a.key_column_arc(), b.key_column_arc()) else {
            continue; // wide layout: no packed column either side
        };
        assert!(
            Arc::ptr_eq(&ca, &cb),
            "param {:?}: equal layouts must share one column",
            a.param
        );
        overlap += 1;
    }
    assert!(
        overlap > 0,
        "tiny network produced no cross-market layout overlap; \
         the sharing test needs a scale with at least one"
    );
    assert!(
        cache.shared() >= overlap as u64,
        "every overlapping layout is a cache hit: shared {} < overlap {overlap}",
        cache.shared(),
    );
    // The second fit built only the layouts the first one didn't have.
    assert!(
        cache.built() < 2 * first_built,
        "second fit rebuilt everything: built {} after first {first_built}",
        cache.built(),
    );
}

#[test]
fn shared_columns_do_not_change_the_model() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let cache = SharedKeyColumns::new();
    let shared0 = fit_market(&net, 0, &cache);
    let shared1 = fit_market(&net, 1, &cache);
    let solo0 = CfModel::fit(
        snap,
        &Scope::market(snap, snap.markets[0].id),
        CfConfig::default(),
    );
    let solo1 = CfModel::fit(
        snap,
        &Scope::market(snap, snap.markets[1].id),
        CfConfig::default(),
    );
    for (a, b) in [(&shared0, &solo0), (&shared1, &solo1)] {
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.dependent, pb.dependent);
            assert_eq!(
                pa.key_column_arc().as_deref(),
                pb.key_column_arc().as_deref()
            );
        }
    }
}

#[test]
#[should_panic(expected = "SharedKeyColumns reused across different snapshots")]
fn fleet_guard_rejects_a_different_snapshot() {
    let a = generate(&NetScale::tiny(), &TuningKnobs::default());
    let b = generate(&NetScale::tiny(), &TuningKnobs::default());
    let cache = SharedKeyColumns::new();
    fit_market(&a, 0, &cache);
    // Same shape, different snapshot object: cached columns would alias
    // the wrong fleet's attribute values. Must panic, not mis-serve.
    fit_market(&b, 0, &cache);
}
