//! Differential tests: the packed-key hot path (`cf::CfModel`) against the
//! unpacked reference implementation (`legacy::LegacyCfModel`).
//!
//! The packed representation is supposed to be a pure re-encoding — every
//! `Recommendation` (value, basis, support, voters) must be bit-identical
//! to what the legacy path produces, for every parameter, both learner
//! flavors, and leave-one-out on and off.

use auric_core::legacy::LegacyCfModel;
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{NetworkSnapshot, ParamKind};
use auric_netgen::{generate, NetScale, TuningKnobs};

/// Compares the two models over every parameter, probing carriers and
/// pairs at the given strides (1 = exhaustive).
fn assert_equivalent(
    snap: &NetworkSnapshot,
    packed: &CfModel,
    legacy: &LegacyCfModel,
    carrier_stride: usize,
    pair_stride: usize,
) {
    for def in snap.catalog.defs() {
        let p = def.id;
        assert_eq!(
            packed.param(p).dependent,
            legacy.param(p).dependent,
            "{}: dependency sets diverge",
            def.name
        );
        match def.kind {
            ParamKind::Singular => {
                for c in snap.carriers.iter().step_by(carrier_stride) {
                    let key = legacy.param(p).key_for_carrier(&c.attrs);
                    assert_eq!(
                        packed.param(p).key_for_carrier(&c.attrs),
                        key,
                        "{}: carrier {} key diverges",
                        def.name,
                        c.id
                    );
                    let current = snap.config.value(p, c.id);
                    for exclude in [None, Some(current)] {
                        assert_eq!(
                            packed.recommend_global(p, &key, exclude),
                            legacy.recommend_global(p, &key, exclude),
                            "{}: global diverges at carrier {} (exclude {exclude:?})",
                            def.name,
                            c.id
                        );
                    }
                    for loo in [false, true] {
                        assert_eq!(
                            packed.recommend_local_singular(snap, p, c.id, loo),
                            legacy.recommend_local_singular(snap, p, c.id, loo),
                            "{}: local diverges at carrier {} (loo {loo})",
                            def.name,
                            c.id
                        );
                    }
                }
            }
            ParamKind::Pairwise => {
                for q in (0..snap.x2.n_pairs() as u32).step_by(pair_stride) {
                    let (j, k) = snap.x2.pair(q);
                    let key = legacy
                        .param(p)
                        .key_for_pair(&snap.carrier(j).attrs, &snap.carrier(k).attrs);
                    assert_eq!(
                        packed
                            .param(p)
                            .key_for_pair(&snap.carrier(j).attrs, &snap.carrier(k).attrs),
                        key,
                        "{}: pair {q} key diverges",
                        def.name
                    );
                    let current = snap.config.pair_value(p, q);
                    for exclude in [None, Some(current)] {
                        assert_eq!(
                            packed.recommend_global(p, &key, exclude),
                            legacy.recommend_global(p, &key, exclude),
                            "{}: global diverges at pair {q} (exclude {exclude:?})",
                            def.name
                        );
                    }
                    for loo in [false, true] {
                        assert_eq!(
                            packed.recommend_local_pair(snap, p, q, loo),
                            legacy.recommend_local_pair(snap, p, q, loo),
                            "{}: local diverges at pair {q} (loo {loo})",
                            def.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn packed_path_matches_legacy_exhaustively_on_a_noisy_tiny_network() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let config = CfConfig::default();
    let packed = CfModel::fit(snap, &scope, config);
    let legacy = LegacyCfModel::fit(snap, &scope, config);
    assert_equivalent(snap, &packed, &legacy, 1, 1);

    // Impossible probe keys (levels past every cardinality) must fall
    // through the chain identically: the packed path collapses them to
    // the reserved sentinel, the legacy path simply never finds a group.
    for def in snap.catalog.defs() {
        let p = def.id;
        let bogus: Vec<u16> = packed.param(p).dependent.iter().map(|_| u16::MAX).collect();
        assert_eq!(
            packed.recommend_global(p, &bogus, None),
            legacy.recommend_global(p, &bogus, None),
            "{}: bogus-key fallback diverges",
            def.name
        );
    }
}

#[test]
fn packed_path_matches_legacy_on_a_seeded_medium_network() {
    // The bench scale. Exhaustive probing would take minutes in debug
    // builds, so probe a deterministic stride of carriers and pairs —
    // every parameter, both learners, LoO on and off.
    let net = generate(&NetScale::medium(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let config = CfConfig::default();
    let packed = CfModel::fit(snap, &scope, config);
    let legacy = LegacyCfModel::fit(snap, &scope, config);
    assert_equivalent(snap, &packed, &legacy, 23, 101);
}

#[test]
fn packed_path_matches_legacy_under_marginal_selection() {
    // The marginal-selection ablation keeps every associated attribute, so
    // pair-wise keys routinely exceed 64 bits. Under the old u64 codec
    // that forced the wide fallback; the u128 codec must keep every
    // Table-1 layout on the packed path (the schema's worst case is ~94
    // bits) and still agree with the legacy oracle on those widest keys.
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let config = CfConfig {
        marginal_selection: true,
        ..CfConfig::default()
    };
    let packed = CfModel::fit(snap, &scope, config);
    let legacy = LegacyCfModel::fit(snap, &scope, config);
    let over_64 = packed
        .params()
        .iter()
        .filter(|pc| {
            pc.codec()
                .cards()
                .iter()
                .map(|&c| (u16::BITS - c.leading_zeros()).max(1))
                .sum::<u32>()
                > 64
        })
        .count();
    assert!(
        over_64 > 0,
        "expected at least one over-64-bit layout under marginal selection"
    );
    assert!(
        packed.params().iter().all(|pc| pc.codec().fits_u128()),
        "every Table-1 layout must fit the u128 packed path"
    );
    assert_equivalent(snap, &packed, &legacy, 3, 17);
}
