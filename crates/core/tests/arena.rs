//! Differential tests for the arena-backed fit: the key columns a fitted
//! model carries must be bit-identical to a per-target recompute through
//! `packed_for_carrier` / `packed_for_pair` (which read the original
//! carrier structs, not the arena), and parameters that select the same
//! `(kind, dependent)` layout must share one physical column.

use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{NetworkSnapshot, ParamKind};
use auric_netgen::{generate, NetScale, TuningKnobs};
use std::collections::HashMap;
use std::sync::Arc;

/// Compares every parameter's fitted key column against fresh per-target
/// packs at the given strides (1 = exhaustive).
fn assert_columns_match(
    snap: &NetworkSnapshot,
    model: &CfModel,
    carrier_stride: usize,
    pair_stride: usize,
) {
    for def in snap.catalog.defs() {
        let pc = model.param(def.id);
        match def.kind {
            ParamKind::Singular => {
                let keys = pc
                    .carrier_keys()
                    .unwrap_or_else(|| panic!("{}: default fit must pack a column", def.name));
                assert_eq!(keys.len(), snap.n_carriers(), "{}: column length", def.name);
                for (t, c) in snap.carriers.iter().enumerate().step_by(carrier_stride) {
                    assert_eq!(
                        keys[t],
                        pc.packed_for_carrier(&c.attrs),
                        "{}: carrier {} key diverges",
                        def.name,
                        c.id
                    );
                }
            }
            ParamKind::Pairwise => {
                let keys = pc
                    .pair_keys()
                    .unwrap_or_else(|| panic!("{}: default fit must pack a column", def.name));
                assert_eq!(keys.len(), snap.x2.n_pairs(), "{}: column length", def.name);
                for q in (0..snap.x2.n_pairs() as u32).step_by(pair_stride) {
                    let (j, k) = snap.x2.pair(q);
                    assert_eq!(
                        keys[q as usize],
                        pc.packed_for_pair(&snap.carrier(j).attrs, &snap.carrier(k).attrs),
                        "{}: pair {q} key diverges",
                        def.name
                    );
                }
            }
        }
    }
}

#[test]
fn arena_fit_columns_match_fresh_packs_exhaustively_on_tiny() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let model = CfModel::fit(snap, &Scope::whole(snap), CfConfig::default());
    assert_columns_match(snap, &model, 1, 1);
}

#[test]
fn arena_fit_columns_match_fresh_packs_on_a_strided_medium_network() {
    let net = generate(&NetScale::medium(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let model = CfModel::fit(snap, &Scope::whole(snap), CfConfig::default());
    assert_columns_match(snap, &model, 23, 101);
}

#[test]
fn equal_dependent_sets_share_one_physical_column() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let model = CfModel::fit(snap, &Scope::whole(snap), CfConfig::default());

    // Group fitted parameters by (kind, dependent); within a group every
    // column must be the same allocation, across groups never.
    let mut groups: HashMap<(ParamKind, Vec<_>), Vec<Arc<[u128]>>> = HashMap::new();
    for def in snap.catalog.defs() {
        let pc = model.param(def.id);
        let col = pc.key_column_arc().expect("default fit packs a column");
        groups
            .entry((def.kind, pc.dependent.clone()))
            .or_default()
            .push(col);
    }
    assert!(
        groups.len() < snap.catalog.len(),
        "expected at least two parameters to agree on a dependent set \
         ({} layouts over {} parameters)",
        groups.len(),
        snap.catalog.len()
    );
    let mut representatives: Vec<Arc<[u128]>> = Vec::new();
    for ((kind, dependent), cols) in &groups {
        for col in cols {
            assert!(
                Arc::ptr_eq(col, &cols[0]),
                "{kind:?} {dependent:?}: same layout must share one column"
            );
        }
        for other in &representatives {
            assert!(
                !Arc::ptr_eq(&cols[0], other),
                "distinct layouts must not alias"
            );
        }
        representatives.push(Arc::clone(&cols[0]));
    }
}
