//! Differential suite for the incremental fit: a model rolled forward
//! with [`CfModel::apply_delta`] must serialize **byte-identically** to a
//! full refit of the post-batch snapshot — same dependency selections,
//! same sorted vote groups, same defaults. The suite drives the streaming
//! generator batch-by-batch (adds, pockets, retunes) and layers synthetic
//! removal / edge-add / retune batches on top, at whole-network and
//! per-market scopes.

use auric_core::{CfConfig, CfModel, DeltaApply, Scope, SharedKeyColumns};
use auric_model::{
    apply_fleet_deltas, empty_snapshot, AppliedBatch, AttrArena, CarrierId, DeltaSlot, FleetDelta,
    MarketId, NetworkSnapshot, Provenance,
};
use auric_netgen::{stream, NetScale, TuningKnobs};

fn json(model: &CfModel) -> String {
    serde_json::to_string(model).expect("model serializes")
}

fn full_fit(snapshot: &NetworkSnapshot, scope: &Scope) -> CfModel {
    CfModel::fit(snapshot, scope, CfConfig::default())
}

/// Applies one event batch and rolls `arena`/`scope` forward, returning
/// the digest and the pre-batch scope.
fn roll_forward(
    snapshot: &mut NetworkSnapshot,
    arena: &mut AttrArena,
    scope: &mut Scope,
    batch: &[FleetDelta],
) -> (AppliedBatch, Scope) {
    let digest = apply_fleet_deltas(snapshot, batch).expect("consistent batch");
    arena.append(snapshot);
    let before = std::mem::replace(scope, Scope::whole(snapshot));
    (digest, before)
}

/// Streams a fleet from the empty snapshot, applying every batch
/// incrementally; compares against a full refit on every batch index
/// where `compare` says so. Returns the final state for follow-on
/// synthetic batches.
fn run_stream_differential(
    scale: NetScale,
    compare: impl Fn(usize, bool) -> bool,
) -> (NetworkSnapshot, AttrArena, Scope, CfModel) {
    // Default knobs so Phase B emits real retune batches (stale trials,
    // live trials, noise) — the pure-retune fast path needs exercise.
    let mut s = stream(&scale, &TuningKnobs::default());
    let mut snapshot = empty_snapshot(s.schema().clone(), s.catalog().clone());
    let mut arena = AttrArena::from_snapshot(&snapshot);
    let mut scope = Scope::whole(&snapshot);
    let mut model = full_fit(&snapshot, &scope);
    let mut i = 0usize;
    let mut saw_untouched_retune_batch = false;
    while let Some(batch) = s.next_batch() {
        let (digest, before) = roll_forward(&mut snapshot, &mut arena, &mut scope, &batch);
        let report = model.apply_delta(&DeltaApply {
            snapshot: &snapshot,
            arena: &arena,
            scope_before: &before,
            scope_after: &scope,
            batch: &digest,
            key_cache: None,
        });
        assert_eq!(
            report.params_patched + report.params_rebuilt + report.params_untouched,
            snapshot.catalog.len(),
            "every parameter is accounted for"
        );
        // A pure-retune batch must leave the parameters it names as the
        // only touched ones — that skip is the whole point of the
        // incremental fit.
        if !digest.structural() && !digest.retunes.is_empty() && report.params_untouched > 0 {
            saw_untouched_retune_batch = true;
        }
        if compare(i, false) {
            assert_eq!(
                json(&model),
                json(&full_fit(&snapshot, &scope)),
                "batch {i}: incremental model diverged from full refit"
            );
        }
        i += 1;
    }
    if compare(i, true) {
        assert_eq!(
            json(&model),
            json(&full_fit(&snapshot, &scope)),
            "final: incremental model diverged from full refit"
        );
    }
    assert!(
        saw_untouched_retune_batch,
        "stream never exercised the untouched-parameter fast path"
    );
    (snapshot, arena, scope, model)
}

#[test]
fn exhaustive_stream_matches_full_refit_on_every_batch() {
    let scale = NetScale {
        n_markets: 1,
        enbs_per_market: 3,
        seed: 11,
    };
    run_stream_differential(scale, |_, _| true);
}

#[test]
fn tiny_stream_strided_matches_full_refit() {
    run_stream_differential(NetScale::tiny(), |i, last| last || i % 7 == 0);
}

/// Picks two same-market carriers with no X2 edge between them.
fn absent_edge(snapshot: &NetworkSnapshot) -> (CarrierId, CarrierId) {
    for a in 0..snapshot.n_carriers() {
        let ca = CarrierId(a as u32);
        for b in (a + 1)..snapshot.n_carriers() {
            let cb = CarrierId(b as u32);
            if snapshot.carrier(ca).market == snapshot.carrier(cb).market
                && !snapshot.x2.neighbors(ca).contains(&cb)
            {
                return (ca, cb);
            }
        }
    }
    panic!("fleet is a clique");
}

#[test]
fn synthetic_retunes_removals_and_edge_adds_match_full_refit() {
    let scale = NetScale {
        n_markets: 2,
        enbs_per_market: 4,
        seed: 23,
    };
    let (mut snapshot, mut arena, mut scope, mut model) =
        run_stream_differential(scale, |_, last| last);

    let catalog = snapshot.catalog.clone();
    let sing: Vec<_> = catalog.singular_ids().collect();
    let pair_params: Vec<_> = catalog.pairwise_ids().collect();
    let why = Provenance::Noise;

    // Batch 1: pure retunes — a singular slot (twice, chaining values),
    // and a pair slot.
    let c0 = CarrierId(0);
    let (pa, pb) = snapshot.x2.pair(0);
    let p_sing = sing[0];
    let p_pair = pair_params[0];
    let v1 = (snapshot.config.value(p_sing, c0) + 1) % catalog.def(p_sing).range.n_values() as u16;
    let v2 = (v1 + 1) % catalog.def(p_sing).range.n_values() as u16;
    let pv =
        (snapshot.config.pair_value(p_pair, 0) + 1) % catalog.def(p_pair).range.n_values() as u16;
    let batches: Vec<Vec<FleetDelta>> = vec![
        vec![
            FleetDelta::Retune {
                param: p_sing,
                slot: DeltaSlot::Carrier(c0),
                value: v1,
                why,
            },
            FleetDelta::Retune {
                param: p_sing,
                slot: DeltaSlot::Carrier(c0),
                value: v2,
                why,
            },
            FleetDelta::Retune {
                param: p_pair,
                slot: DeltaSlot::Pair(pa, pb),
                value: pv,
                why,
            },
        ],
        // Batch 2: a new X2 edge, plus a retune on one of its directed
        // pairs (must fold into the add, not double-count).
        {
            let (ea, eb) = absent_edge(&snapshot);
            let base: Vec<_> = pair_params
                .iter()
                .map(|&p| snapshot.config.pair_value(p, 0))
                .collect();
            vec![
                FleetDelta::AddX2Edge {
                    a: ea,
                    b: eb,
                    base_ab: base.clone(),
                    base_ba: base,
                },
                FleetDelta::Retune {
                    param: p_pair,
                    slot: DeltaSlot::Pair(ea, eb),
                    value: pv,
                    why,
                },
            ]
        },
        // Batch 3: remove the tail carrier (its pairs leave with it).
        vec![FleetDelta::RemoveCarrier {
            id: CarrierId(snapshot.n_carriers() as u32 - 1),
        }],
        // Batch 4: retune-then-remove the (new) tail carrier in one batch
        // — the removal record carries the retuned value, so the swap
        // must land before the subtract.
        {
            let tail = CarrierId(snapshot.n_carriers() as u32 - 2);
            let tv = (snapshot.config.value(p_sing, tail) + 1)
                % catalog.def(p_sing).range.n_values() as u16;
            vec![
                FleetDelta::Retune {
                    param: p_sing,
                    slot: DeltaSlot::Carrier(tail),
                    value: tv,
                    why,
                },
                FleetDelta::RemoveCarrier { id: tail },
            ]
        },
    ];

    for (i, batch) in batches.iter().enumerate() {
        let (digest, before) = roll_forward(&mut snapshot, &mut arena, &mut scope, batch);
        model.apply_delta(&DeltaApply {
            snapshot: &snapshot,
            arena: &arena,
            scope_before: &before,
            scope_after: &scope,
            batch: &digest,
            key_cache: None,
        });
        assert_eq!(
            json(&model),
            json(&full_fit(&snapshot, &scope)),
            "synthetic batch {i}: incremental model diverged from full refit"
        );
    }
}

#[test]
fn per_market_models_with_a_shared_cache_match_scoped_refits() {
    let scale = NetScale::tiny();
    let mut s = stream(&scale, &TuningKnobs::none());
    let mut snapshot = empty_snapshot(s.schema().clone(), s.catalog().clone());

    // Phase A: build the fleet outright — per-market models start from a
    // fitted state, as the serving layer does.
    for _ in 0..scale.n_markets {
        let batch = s.next_batch().expect("market batch");
        apply_fleet_deltas(&mut snapshot, &batch).expect("consistent batch");
    }
    let mut arena = AttrArena::from_snapshot(&snapshot);
    let markets: Vec<MarketId> = (0..scale.n_markets as u16).map(MarketId).collect();
    let mut scopes: Vec<Scope> = markets
        .iter()
        .map(|&m| Scope::market(&snapshot, m))
        .collect();
    let mut models: Vec<CfModel> = scopes.iter().map(|sc| full_fit(&snapshot, sc)).collect();

    // Phase B (retunes) plus a synthetic structural tail batch, applied
    // to every market model through one shared key-column cache.
    let mut batches: Vec<Vec<FleetDelta>> = Vec::new();
    while let Some(b) = s.next_batch() {
        batches.push(b);
    }
    batches.push(vec![FleetDelta::RemoveCarrier {
        id: CarrierId(snapshot.n_carriers() as u32 - 1),
    }]);

    let n_batches = batches.len();
    for (i, batch) in batches.iter().enumerate() {
        let digest = apply_fleet_deltas(&mut snapshot, batch).expect("consistent batch");
        arena.append(&snapshot);
        let cache = SharedKeyColumns::new();
        for (mi, &m) in markets.iter().enumerate() {
            let after = Scope::market(&snapshot, m);
            let before = std::mem::replace(&mut scopes[mi], after);
            models[mi].apply_delta(&DeltaApply {
                snapshot: &snapshot,
                arena: &arena,
                scope_before: &before,
                scope_after: &scopes[mi],
                batch: &digest,
                key_cache: Some(cache.clone()),
            });
        }
        if i % 9 == 0 || i + 1 == n_batches {
            for (mi, model) in models.iter().enumerate() {
                assert_eq!(
                    json(model),
                    json(&full_fit(&snapshot, &scopes[mi])),
                    "batch {i}, market {mi}: incremental model diverged from scoped refit"
                );
            }
        }
        if i + 1 == n_batches {
            // The structural batch respliced fleet-wide key columns;
            // both market models need them, so the shared cache must
            // have served at least one from the other's build.
            assert!(
                cache.shared() > 0,
                "structural batch should share spliced columns across market models"
            );
        }
    }

    // The structural tail removed a carrier of one market: the other
    // market's model must have seen every parameter as untouched.
    let digest = AppliedBatch::default();
    for model in &models {
        // Sanity: rolling an *empty* digest forward is a no-op.
        let before = Scope::whole(&snapshot);
        let after = Scope::whole(&snapshot);
        let mut m = model.clone();
        let report = m.apply_delta(&DeltaApply {
            snapshot: &snapshot,
            arena: &arena,
            scope_before: &before,
            scope_after: &after,
            batch: &digest,
            key_cache: None,
        });
        assert_eq!(report.params_rebuilt + report.params_patched, 0);
        assert_eq!(json(&m), json(model));
    }
}

#[test]
fn pure_retune_batches_only_touch_named_parameters() {
    let scale = NetScale {
        n_markets: 1,
        enbs_per_market: 3,
        seed: 29,
    };
    let (mut snapshot, mut arena, mut scope, mut model) =
        run_stream_differential(scale, |_, last| last);
    let sing = snapshot.catalog.singular_ids().next().unwrap();
    let card = snapshot.catalog.def(sing).range.n_values() as u16;
    let c0 = CarrierId(0);
    let batch = vec![FleetDelta::Retune {
        param: sing,
        slot: DeltaSlot::Carrier(c0),
        value: (snapshot.config.value(sing, c0) + 1) % card,
        why: Provenance::Noise,
    }];
    let (digest, before) = roll_forward(&mut snapshot, &mut arena, &mut scope, &batch);
    let report = model.apply_delta(&DeltaApply {
        snapshot: &snapshot,
        arena: &arena,
        scope_before: &before,
        scope_after: &scope,
        batch: &digest,
        key_cache: None,
    });
    // Exactly one parameter changed; everything else must ride the
    // untouched fast path (no re-selection, no table churn).
    assert_eq!(report.params_patched + report.params_rebuilt, 1);
    assert_eq!(
        report.params_untouched,
        snapshot.catalog.len() - 1,
        "a single retune must not disturb other parameters"
    );
    assert_eq!(json(&model), json(&full_fit(&snapshot, &scope)));
}
