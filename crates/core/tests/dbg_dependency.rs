use auric_core::dependency::select_dependent;
use auric_core::{CfConfig, CfModel, Scope};
use auric_netgen::{generate, NetScale, TuningKnobs};

#[test]
#[ignore]
fn debug_dependency_recall() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::none());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    for p in snap.catalog.pairwise_ids() {
        let rule = &net.truth.rules[p.index()];
        let dep = select_dependent(snap, &scope, p, 0.01);
        let planted: Vec<String> = rule
            .relevant
            .iter()
            .map(|r| format!("{:?}/{}", r.side, r.attr.0))
            .collect();
        let found: Vec<String> = dep
            .iter()
            .map(|d| format!("{:?}/{}", d.side, d.attr.0))
            .collect();
        let missed: Vec<&String> = planted
            .iter()
            .filter(|pl| {
                let (s, a) = pl.split_once('/').unwrap();
                !dep.iter()
                    .any(|d| format!("{:?}", d.side) == s && d.attr.0.to_string() == a)
            })
            .collect();
        let acc = auric_core::accuracy::evaluate_param(snap, &scope, &model, p, true);
        println!(
            "{} palette={} planted={:?} found#={} missed={:?} acc={:.3}",
            snap.catalog.def(p).name,
            rule.palette.len(),
            planted,
            found.len(),
            missed,
            acc.accuracy()
        );
    }
}

#[test]
#[ignore]
fn debug_mismatch_breakdown() {
    use auric_model::ParamKind;
    let net = generate(
        &NetScale {
            n_markets: 8,
            enbs_per_market: 30,
            seed: 7,
        },
        &TuningKnobs::default(),
    );
    let snap = &net.snapshot;
    let mut counts = std::collections::HashMap::new();
    let mut slot_counts = std::collections::HashMap::new();
    for m in &snap.markets {
        let scope = Scope::market(snap, m.id);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        for def in snap.catalog.defs() {
            match def.kind {
                ParamKind::Singular => {
                    for &c in &scope.carriers {
                        let prov = snap.config.provenance(def.id, c);
                        *slot_counts.entry(format!("{prov:?}")).or_insert(0usize) += 1;
                        let rec = model.recommend_local_singular(snap, def.id, c, true);
                        if rec.value != snap.config.value(def.id, c) {
                            *counts
                                .entry((format!("{prov:?}"), format!("{:?}", rec.basis)))
                                .or_insert(0usize) += 1;
                        }
                    }
                }
                ParamKind::Pairwise => {
                    for &q in &scope.pairs {
                        let prov = snap.config.pair_provenance(def.id, q);
                        *slot_counts.entry(format!("{prov:?}")).or_insert(0usize) += 1;
                        let rec = model.recommend_local_pair(snap, def.id, q, true);
                        if rec.value != snap.config.pair_value(def.id, q) {
                            *counts
                                .entry((format!("{prov:?}"), format!("{:?}", rec.basis)))
                                .or_insert(0usize) += 1;
                        }
                    }
                }
            }
        }
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1));
    for ((prov, basis), n) in v.iter().take(15) {
        println!("{n:>8}  {prov:<40} via {basis}");
    }
    println!("--- slots by provenance:");
    for (p, n) in &slot_counts {
        println!("{n:>8}  {p}");
    }
}
