//! Regression tests for dependency selection quality, promoted from the
//! old ignored `dbg_dependency` diagnostics: the printouts became
//! assertions on the planted ground truth the generator records in
//! `net.truth`.
//!
//! Everything here is deterministic — `NetScale::tiny()` pins the
//! generator seed, and fitting is order-stable regardless of the
//! work-stealing schedule.

use auric_core::dependency::{select_dependent, select_dependent_marginal, PredictorAttr, Side};
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{ParamKind, Provenance};
use auric_netgen::rules::RuleAttr;
use auric_netgen::{generate, GeneratedNetwork, NetScale, TuningKnobs};

fn clean_network() -> GeneratedNetwork {
    generate(&NetScale::tiny(), &TuningKnobs::none())
}

/// Whether a planted rule attribute and a selected predictor agree. The
/// generator and the learner use distinct `Side` enums, so compare
/// structurally.
fn same(pa: &RuleAttr, d: &PredictorAttr) -> bool {
    let side_matches = matches!(
        (pa.side, d.side),
        (auric_netgen::rules::Side::Src, Side::Src) | (auric_netgen::rules::Side::Dst, Side::Dst)
    );
    side_matches && pa.attr == d.attr
}

/// How many planted relevant attributes appear in the selected set.
fn hits(planted: &[RuleAttr], found: &[PredictorAttr]) -> usize {
    planted
        .iter()
        .filter(|pa| found.iter().any(|d| same(pa, d)))
        .count()
}

#[test]
fn conditional_selection_recovers_planted_dependencies() {
    let net = clean_network();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let mut planted_total = 0usize;
    let mut recovered = 0usize;
    let mut with_rule = 0usize;
    let mut empty = 0usize;
    for def in snap.catalog.defs() {
        let rule = &net.truth.rules[def.id.index()];
        if rule.relevant.is_empty() {
            continue;
        }
        with_rule += 1;
        let dep = select_dependent(snap, &scope, def.id, 0.01);
        empty += usize::from(dep.is_empty());
        planted_total += rule.relevant.len();
        recovered += hits(&rule.relevant, &dep);
    }
    assert!(
        planted_total > 50,
        "ground truth too small: {planted_total}"
    );
    // A parameter whose rule value is nearly constant at this scale can
    // legitimately select nothing (heavily skewed palettes leave chi-square
    // nothing to work with), but that must stay a small minority.
    assert!(
        empty * 5 <= with_rule,
        "{empty}/{with_rule} ruled parameters selected no dependencies"
    );
    // Not every planted attribute is recoverable (some are near-constant
    // in a tiny network, and a conditionally redundant attribute is
    // *correctly* dropped), but the bulk must be found.
    let recall = recovered as f64 / planted_total as f64;
    assert!(
        recall > 0.45,
        "conditional recall {recall:.3} ({recovered}/{planted_total})"
    );
}

#[test]
fn conditional_selection_is_sparser_than_marginal() {
    // The marginal test keeps every attribute with a significant raw
    // association — including confounders that are redundant given an
    // earlier pick. The conditional forward selection must produce
    // strictly smaller dependency sets overall without losing recall to
    // the point of hurting the recommender (covered by the accuracy
    // tests).
    let net = clean_network();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let mut conditional_total = 0usize;
    let mut marginal_total = 0usize;
    let mut marginal_recovered = 0usize;
    let mut conditional_recovered = 0usize;
    let mut planted_total = 0usize;
    for def in snap.catalog.defs() {
        let cond = select_dependent(snap, &scope, def.id, 0.01);
        let marg = select_dependent_marginal(snap, &scope, def.id, 0.01);
        conditional_total += cond.len();
        marginal_total += marg.len();
        // Everything the conditional pass keeps is marginally associated
        // too, so it must appear in the marginal set.
        for pa in &cond {
            assert!(
                marg.contains(pa),
                "{}: conditional pick {pa:?} missing from the marginal set",
                def.name
            );
        }
        let rule = &net.truth.rules[def.id.index()];
        planted_total += rule.relevant.len();
        conditional_recovered += hits(&rule.relevant, &cond);
        marginal_recovered += hits(&rule.relevant, &marg);
    }
    assert!(
        conditional_total < marginal_total,
        "conditional kept {conditional_total} vs marginal {marginal_total}"
    );
    // The conditional pass trades some ground-truth coverage for
    // sparsity (a planted attribute can be conditionally redundant once
    // its confounders are in), but it must keep at least half of what the
    // marginal pass finds — the accuracy tests confirm that is enough.
    assert!(planted_total > 0);
    assert!(
        conditional_recovered * 2 >= marginal_recovered,
        "conditional recovered {conditional_recovered}, marginal {marginal_recovered}"
    );
}

#[test]
fn mismatches_concentrate_on_noise_and_pockets() {
    // The Fig. 12 story: on a network with tuning noise, the recommender
    // should disagree with *noisy* slots far more often than with
    // rule-conforming slots — that is what makes the mismatch report a
    // misconfiguration detector rather than a random-error meter.
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    let mut rule_slots = 0usize;
    let mut rule_mismatch = 0usize;
    let mut odd_slots = 0usize;
    let mut odd_mismatch = 0usize;
    let mut tally = |prov: Provenance, mismatch: bool| match prov {
        Provenance::Rule => {
            rule_slots += 1;
            rule_mismatch += usize::from(mismatch);
        }
        Provenance::Noise | Provenance::StaleTrial | Provenance::Pocket { .. } => {
            odd_slots += 1;
            odd_mismatch += usize::from(mismatch);
        }
        // Deliberate ongoing experiments are neither conforming nor
        // misconfigured; they don't belong in either rate.
        Provenance::TrialInProgress => {}
    };
    for def in snap.catalog.defs() {
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    let rec = model.recommend_local_singular(snap, def.id, c, true);
                    tally(
                        snap.config.provenance(def.id, c),
                        rec.value != snap.config.value(def.id, c),
                    );
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    let rec = model.recommend_local_pair(snap, def.id, q, true);
                    tally(
                        snap.config.pair_provenance(def.id, q),
                        rec.value != snap.config.pair_value(def.id, q),
                    );
                }
            }
        }
    }
    assert!(rule_slots > 0 && odd_slots > 0, "both populations present");
    let rule_rate = rule_mismatch as f64 / rule_slots as f64;
    let odd_rate = odd_mismatch as f64 / odd_slots as f64;
    assert!(
        odd_rate > 5.0 * rule_rate.max(0.001),
        "noise/pocket mismatch rate {odd_rate:.4} vs rule rate {rule_rate:.4}"
    );
}
