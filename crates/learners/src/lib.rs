//! Baseline learners, from scratch.
//!
//! The paper compares Auric's collaborative filtering against four classic
//! classifiers run in scikit-learn (§4.2); this crate reimplements them in
//! Rust with the paper's hyperparameters:
//!
//! - [`tree::DecisionTree`] — Gini splits, expanded until leaves are pure;
//! - [`forest::RandomForest`] — 100 Gini trees, bootstrap rows, √A feature
//!   subsets per split;
//! - [`knn::KnnClassifier`] — k = 5, uniform weights, Euclidean distance
//!   over one-hot attributes (ranked via the exactly-equivalent Hamming
//!   distance on the categorical rows);
//! - [`mlp::MlpClassifier`] — 7 hidden layers (100,100,100,50,50,50,10),
//!   ReLU, Adam, L2 = 1e-5;
//! - [`lasso::Lasso`] — the §3.2 Eq. 1 sparse linear alternative, via
//!   coordinate descent.
//!
//! All classifiers implement the [`Classifier`] / [`Model`] pair over a
//! categorical [`dataset::Dataset`]; [`cv::cross_val_accuracy`] provides
//! the paper's "standard machine learning cross-validation" evaluation.

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod knn;
pub mod lasso;
pub mod mlp;
pub mod tree;

pub use cv::cross_val_accuracy;
pub use dataset::Dataset;
pub use forest::RandomForest;
pub use knn::KnnClassifier;
pub use mlp::MlpClassifier;
pub use tree::DecisionTree;

/// A classifier that can be fitted to a categorical dataset.
pub trait Classifier: Send + Sync {
    /// Fits a model. Deterministic for a fixed classifier configuration
    /// and dataset.
    fn fit(&self, data: &Dataset) -> Box<dyn Model>;

    /// Short display name used in the Table 4 / Fig. 10 reports.
    fn name(&self) -> &'static str;
}

/// A fitted model mapping a categorical row to a predicted raw value
/// (the original `ValueIdx`-typed raw value, not the dense
/// class index).
pub trait Model: Send + Sync {
    /// Predicts the raw value for `row`.
    fn predict(&self, row: &[u16]) -> u16;
}

/// The four classic global learners with the paper's §4.2 hyperparameters,
/// in the order Table 4 lists them.
pub fn paper_baselines() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(RandomForest::paper()),
        Box::new(KnnClassifier::paper()),
        Box::new(DecisionTree::paper()),
        Box::new(MlpClassifier::paper()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baselines_are_the_four_classics() {
        let names: Vec<&str> = paper_baselines().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "random-forest",
                "k-nearest-neighbors",
                "decision-tree",
                "deep-neural-network"
            ]
        );
    }
}
