//! Deep-neural-network classifier: a fully connected multi-layer
//! perceptron matching §4.2's configuration — 7 hidden layers of sizes
//! (100, 100, 100, 50, 50, 50, 10), ReLU activations, the Adam optimizer,
//! L2 penalty 1e-5, fixed random state — trained with softmax
//! cross-entropy on one-hot encoded attributes.
//!
//! The paper sets `max_iter = 10000` as a *ceiling* with tolerance-based
//! early stopping (scikit-learn semantics); this implementation keeps the
//! same contract with a configurable ceiling so the evaluation harness can
//! trade training time for fidelity explicitly.

use crate::dataset::Dataset;
use crate::{Classifier, Model};
use auric_stats::matrix::Matrix;
use auric_stats::onehot::OneHotEncoder;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden layer widths (paper: 100,100,100,50,50,50,10).
    pub hidden: Vec<usize>,
    /// L2 penalty (paper: 1e-5).
    pub alpha: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Epoch ceiling (paper: 10000 with early stopping).
    pub max_iter: usize,
    /// Early-stop tolerance: stop after `patience` epochs without a loss
    /// improvement larger than this.
    pub tol: f64,
    /// Epochs of tolerance before stopping.
    pub patience: usize,
    /// RNG seed (paper: random_state = 1).
    pub seed: u64,
}

impl MlpClassifier {
    /// The paper's architecture, with a practical epoch ceiling. The
    /// ceiling only matters when early stopping never fires.
    pub fn paper() -> Self {
        Self {
            hidden: vec![100, 100, 100, 50, 50, 50, 10],
            alpha: 1e-5,
            learning_rate: 1e-3,
            max_iter: 200,
            tol: 1e-4,
            patience: 10,
            seed: 1,
        }
    }

    /// A smaller, faster variant for unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            hidden: vec![16, 8],
            alpha: 1e-5,
            learning_rate: 5e-3,
            max_iter: 300,
            tol: 1e-5,
            patience: 20,
            seed: 1,
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        let encoder = OneHotEncoder::new(data.cards().to_vec());
        let n_classes = data.n_classes();
        let class_values: Vec<u16> = (0..n_classes as u16).map(|c| data.class_value(c)).collect();
        if n_classes == 1 {
            // Constant-label data: nothing to train.
            return Box::new(MlpModel {
                net: None,
                encoder,
                class_values,
            });
        }
        let mut sizes = vec![encoder.width()];
        sizes.extend(&self.hidden);
        sizes.push(n_classes);
        let mut net = Network::init(&sizes, self.seed);
        self.train(&mut net, data, &encoder);
        Box::new(MlpModel {
            net: Some(net),
            encoder,
            class_values,
        })
    }

    fn name(&self) -> &'static str {
        "deep-neural-network"
    }
}

impl MlpClassifier {
    fn train(&self, net: &mut Network, data: &Dataset, encoder: &OneHotEncoder) {
        let n = data.n_rows();
        let batch_size = n.clamp(1, 200);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xADA7);
        let mut order: Vec<usize> = (0..n).collect();
        let mut adam = Adam::new(net, self.learning_rate);
        let mut x = vec![0.0; encoder.width()];
        let mut rowbuf = Vec::with_capacity(data.n_cols());
        let mut best_loss = f64::INFINITY;
        let mut stall = 0usize;

        for _epoch in 0..self.max_iter {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(batch_size) {
                let mut grads = Gradients::zeros(net);
                let mut batch_loss = 0.0;
                for &i in batch {
                    data.row_into(i, &mut rowbuf);
                    encoder.encode_into(&rowbuf, &mut x);
                    batch_loss += net.backprop(&x, data.label(i) as usize, &mut grads);
                }
                let scale = 1.0 / batch.len() as f64;
                grads.scale(scale);
                // L2 decay (scikit convention: alpha-scaled, per sample).
                grads.add_l2(net, self.alpha * scale);
                adam.step(net, &grads);
                epoch_loss += batch_loss;
            }
            epoch_loss /= n as f64;
            if epoch_loss < best_loss - self.tol {
                best_loss = epoch_loss;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.patience {
                    break;
                }
            }
        }
    }
}

/// A fitted MLP.
pub struct MlpModel {
    /// `None` for constant-label training data.
    net: Option<Network>,
    encoder: OneHotEncoder,
    class_values: Vec<u16>,
}

impl Model for MlpModel {
    fn predict(&self, row: &[u16]) -> u16 {
        let Some(net) = &self.net else {
            return self.class_values[0];
        };
        let x = self.encoder.encode(row);
        let out = net.forward(&x);
        let mut best = 0usize;
        for (i, &v) in out.iter().enumerate() {
            if v > out[best] {
                best = i;
            }
        }
        self.class_values[best]
    }
}

/// The weight stack.
struct Network {
    weights: Vec<Matrix>, // layer l: (out, in)
    biases: Vec<Vec<f64>>,
}

impl Network {
    /// He-initialized network for the given layer sizes.
    fn init(sizes: &[usize], seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let mut m = Matrix::zeros(fan_out, fan_in);
            for v in m.as_mut_slice() {
                *v = gaussian(&mut rng) * std;
            }
            weights.push(m);
            biases.push(vec![0.0; fan_out]);
        }
        Self { weights, biases }
    }

    fn n_layers(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass returning softmax probabilities.
    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut a = x.to_vec();
        for l in 0..self.n_layers() {
            let mut z = self.weights[l].matvec(&a);
            for (zi, bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi += bi;
            }
            if l + 1 < self.n_layers() {
                for zi in &mut z {
                    *zi = zi.max(0.0); // ReLU
                }
            } else {
                softmax_in_place(&mut z);
            }
            a = z;
        }
        a
    }

    /// Forward + backward for one sample; accumulates gradients and
    /// returns the cross-entropy loss.
    fn backprop(&self, x: &[f64], label: usize, grads: &mut Gradients) -> f64 {
        // Forward, keeping activations.
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        for l in 0..self.n_layers() {
            let mut z = self.weights[l].matvec(activations.last().unwrap());
            for (zi, bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi += bi;
            }
            if l + 1 < self.n_layers() {
                for zi in &mut z {
                    *zi = zi.max(0.0);
                }
            } else {
                softmax_in_place(&mut z);
            }
            activations.push(z);
        }
        let probs = activations.last().unwrap();
        let loss = -(probs[label].max(1e-12)).ln();

        // Output delta: p - onehot(label).
        let mut delta: Vec<f64> = probs.clone();
        delta[label] -= 1.0;

        for l in (0..self.n_layers()).rev() {
            let a_prev = &activations[l];
            // dW += delta ⊗ a_prev ; db += delta.
            let gw = &mut grads.weights[l];
            for (r, &d) in delta.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let row = gw.row_mut(r);
                for (g, &a) in row.iter_mut().zip(a_prev) {
                    *g += d * a;
                }
                grads.biases[l][r] += d;
            }
            if l > 0 {
                // delta_prev = Wᵀ delta, masked by ReLU activity.
                let mut prev = self.weights[l].t_matvec(&delta);
                for (p, &a) in prev.iter_mut().zip(a_prev) {
                    if a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
        loss
    }
}

/// Per-parameter gradient accumulators.
struct Gradients {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl Gradients {
    fn zeros(net: &Network) -> Self {
        Self {
            weights: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    fn scale(&mut self, s: f64) {
        for w in &mut self.weights {
            for v in w.as_mut_slice() {
                *v *= s;
            }
        }
        for b in &mut self.biases {
            for v in b {
                *v *= s;
            }
        }
    }

    /// Adds `decay * W` to the weight gradients (biases unpenalized,
    /// matching scikit-learn).
    fn add_l2(&mut self, net: &Network, decay: f64) {
        for (g, w) in self.weights.iter_mut().zip(&net.weights) {
            g.axpy(decay, w);
        }
    }
}

/// Adam optimizer state.
struct Adam {
    lr: f64,
    b1: f64,
    b2: f64,
    eps: f64,
    t: i32,
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl Adam {
    fn new(net: &Network, lr: f64) -> Self {
        Self {
            lr,
            b1: 0.9,
            b2: 0.999,
            eps: 1e-8,
            t: 0,
            m_w: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            v_w: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            m_b: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            v_b: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    fn step(&mut self, net: &mut Network, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.b1.powi(self.t);
        let bc2 = 1.0 - self.b2.powi(self.t);
        for l in 0..net.weights.len() {
            let (m, v) = (self.m_w[l].as_mut_slice(), self.v_w[l].as_mut_slice());
            let g = grads.weights[l].as_slice();
            let w = net.weights[l].as_mut_slice();
            for i in 0..w.len() {
                m[i] = self.b1 * m[i] + (1.0 - self.b1) * g[i];
                v[i] = self.b2 * v[i] + (1.0 - self.b2) * g[i] * g[i];
                w[i] -= self.lr * (m[i] / bc1) / ((v[i] / bc2).sqrt() + self.eps);
            }
            let (mb, vb) = (&mut self.m_b[l], &mut self.v_b[l]);
            let gb = &grads.biases[l];
            let b = &mut net.biases[l];
            for i in 0..b.len() {
                mb[i] = self.b1 * mb[i] + (1.0 - self.b1) * gb[i];
                vb[i] = self.b2 * vb[i] + (1.0 - self.b2) * gb[i] * gb[i];
                b[i] -= self.lr * (mb[i] / bc1) / ((vb[i] / bc2).sqrt() + self.eps);
            }
        }
    }
}

fn softmax_in_place(z: &mut [f64]) {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_linear_rule() {
        // Label = column 0's level.
        let mut rows = Vec::new();
        let mut values = Vec::new();
        for i in 0..60u16 {
            rows.push(vec![i % 3, i % 7]);
            values.push(100 + (i % 3) * 10);
        }
        let data = Dataset::new(rows, values, None);
        let model = MlpClassifier::small_for_tests().fit(&data);
        let mut correct = 0;
        for i in 0..data.n_rows() {
            if model.predict(&data.row_vec(i)) == data.raw_label(i) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 >= 0.95 * data.n_rows() as f64,
            "{correct}/60"
        );
    }

    #[test]
    fn learns_xor_interaction() {
        // XOR needs the hidden layers; a linear model can't do this.
        let mut rows = Vec::new();
        let mut values = Vec::new();
        for i in 0..80u16 {
            let (a, b) = (i % 2, (i / 2) % 2);
            rows.push(vec![a, b]);
            values.push(if a == b { 1 } else { 2 });
        }
        let data = Dataset::new(rows, values, None);
        let model = MlpClassifier::small_for_tests().fit(&data);
        assert_eq!(model.predict(&[0, 0]), 1);
        assert_eq!(model.predict(&[1, 1]), 1);
        assert_eq!(model.predict(&[0, 1]), 2);
        assert_eq!(model.predict(&[1, 0]), 2);
    }

    #[test]
    fn constant_labels_short_circuit() {
        let data = Dataset::new(vec![vec![0], vec![1]], vec![42, 42], None);
        let model = MlpClassifier::paper().fit(&data);
        assert_eq!(model.predict(&[0]), 42);
        assert_eq!(model.predict(&[1]), 42);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::new(
            vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]],
            vec![1, 2, 1, 2],
            None,
        );
        let cfg = MlpClassifier::small_for_tests();
        let a = cfg.fit(&data);
        let b = cfg.fit(&data);
        for row in [[0u16, 0], [0, 1], [1, 0], [1, 1]] {
            assert_eq!(a.predict(&row), b.predict(&row));
        }
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut z = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z[2] > z[1] && z[1] > z[0]);
    }

    #[test]
    fn paper_architecture_has_seven_hidden_layers() {
        let cfg = MlpClassifier::paper();
        assert_eq!(cfg.hidden, vec![100, 100, 100, 50, 50, 50, 10]);
        assert_eq!(cfg.alpha, 1e-5);
        assert_eq!(cfg.seed, 1);
    }
}
