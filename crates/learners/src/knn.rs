//! k-nearest-neighbors classifier (§4.2: k = 5, equal weights, Euclidean
//! distance).
//!
//! Distances are computed on the categorical rows via Hamming distance,
//! which ranks identically to Euclidean distance over the one-hot
//! expansion (squared Euclidean = 2 × Hamming; see
//! `auric_stats::distance`). This is the learner the paper expects to
//! suffer most from irrelevant attributes — every column weighs equally
//! in the distance, relevant or not.

use crate::dataset::Dataset;
use crate::{Classifier, Model};

/// k-NN hyperparameters.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    /// Neighbor count (paper: 5).
    pub k: usize,
}

impl KnnClassifier {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self { k: 5 }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(self.k > 0, "k must be positive");
        Box::new(KnnModel {
            data: data.clone(),
            k: self.k,
        })
    }

    fn name(&self) -> &'static str {
        "k-nearest-neighbors"
    }
}

/// A fitted (memorized) k-NN model.
pub struct KnnModel {
    data: Dataset,
    k: usize,
}

impl Model for KnnModel {
    fn predict(&self, row: &[u16]) -> u16 {
        let n = self.data.n_rows();
        let k = self.k.min(n);
        // Hamming distances accumulated column-at-a-time over the
        // column-major storage: each pass streams one contiguous level
        // column against a single query level.
        let mut dist = vec![0usize; n];
        for (j, &q) in row.iter().enumerate() {
            for (d, &v) in dist.iter_mut().zip(self.data.column(j)) {
                *d += usize::from(v != q);
            }
        }
        // Selection of the k smallest (distance, index) pairs; ties break
        // on training order, matching a stable sort over the full set.
        let mut best: Vec<(usize, usize)> = Vec::with_capacity(k + 1);
        for (i, &d) in dist.iter().enumerate() {
            if best.len() < k || (d, i) < *best.last().unwrap() {
                let pos = best.partition_point(|&p| p < (d, i));
                best.insert(pos, (d, i));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        let mut votes = vec![0usize; self.data.n_classes()];
        for &(_, i) in &best {
            votes[self.data.label(i) as usize] += 1;
        }
        let winner = votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c as u16)
            .unwrap_or(0);
        self.data.class_value(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let data = Dataset::new(
            vec![vec![0, 0], vec![1, 1], vec![2, 2]],
            vec![10, 20, 30],
            None,
        );
        let model = KnnClassifier { k: 1 }.fit(&data);
        assert_eq!(model.predict(&[0, 0]), 10);
        assert_eq!(model.predict(&[1, 1]), 20);
        assert_eq!(model.predict(&[2, 2]), 30);
    }

    #[test]
    fn majority_among_k() {
        // Query equidistant from two 10-rows and one 20-row at k=3.
        let data = Dataset::new(
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![5, 5]],
            vec![10, 10, 20, 30],
            None,
        );
        let model = KnnClassifier { k: 3 }.fit(&data);
        assert_eq!(model.predict(&[0, 0]), 10);
    }

    #[test]
    fn irrelevant_columns_mislead_knn() {
        // Label depends only on col 0, but 4 irrelevant columns dominate
        // the distance: a query matching the relevant column of one class
        // but the irrelevant columns of the other gets pulled over. This
        // is the failure mode §3.2 calls out.
        let data = Dataset::new(
            vec![
                vec![0, 1, 1, 1, 1],
                vec![0, 2, 2, 2, 2],
                vec![1, 3, 3, 3, 3],
                vec![1, 3, 3, 3, 4],
                vec![1, 3, 3, 4, 4],
            ],
            vec![10, 10, 20, 20, 20],
            None,
        );
        let model = KnnClassifier { k: 3 }.fit(&data);
        // Relevant column says class 10, irrelevant ones say class 20.
        assert_eq!(model.predict(&[0, 3, 3, 3, 3]), 20);
    }

    #[test]
    fn k_larger_than_training_set_degrades_to_global_majority() {
        let data = Dataset::new(vec![vec![0], vec![1], vec![2]], vec![7, 7, 9], None);
        let model = KnnClassifier { k: 50 }.fit(&data);
        assert_eq!(model.predict(&[9]), 7);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let data = Dataset::new(vec![vec![0], vec![1]], vec![10, 20], None);
        let model = KnnClassifier { k: 2 }.fit(&data);
        // 1 vote each → smaller class value wins via vote tie-break.
        assert_eq!(model.predict(&[2]), 10);
    }
}
