//! Categorical training data: rows of attribute levels with raw-value
//! labels remapped to dense classes.

/// A labeled categorical dataset.
///
/// Rows are attribute-level vectors (one `u16` level per column — the
/// carrier's `AttrVec`, or both endpoints' concatenated for
/// pair-wise parameters). Labels arrive as raw parameter values and are
/// remapped to dense class indices internally; [`Dataset::class_value`]
/// maps back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    rows: Vec<Vec<u16>>,
    cards: Vec<usize>,
    labels: Vec<u16>,
    class_values: Vec<u16>,
}

impl Dataset {
    /// Builds a dataset from categorical rows and raw-value labels.
    /// Column cardinalities may be given explicitly (so train/test splits
    /// agree on level spaces) or inferred as `max level + 1`.
    ///
    /// # Panics
    /// Panics on empty data, ragged rows, or levels exceeding an explicit
    /// cardinality.
    pub fn new(rows: Vec<Vec<u16>>, raw_values: Vec<u16>, cards: Option<Vec<usize>>) -> Self {
        assert!(!rows.is_empty(), "dataset needs at least one row");
        assert_eq!(rows.len(), raw_values.len(), "rows/labels length mismatch");
        let n_cols = rows[0].len();
        let cards = match cards {
            Some(c) => {
                assert_eq!(c.len(), n_cols, "cardinality vector length mismatch");
                for row in &rows {
                    assert_eq!(row.len(), n_cols, "ragged rows");
                    for (j, (&v, &card)) in row.iter().zip(&c).enumerate() {
                        assert!(
                            (v as usize) < card,
                            "level {v} exceeds cardinality of column {j}"
                        );
                    }
                }
                c
            }
            None => {
                let mut c = vec![1usize; n_cols];
                for row in &rows {
                    assert_eq!(row.len(), n_cols, "ragged rows");
                    for (card, &v) in c.iter_mut().zip(row) {
                        *card = (*card).max(v as usize + 1);
                    }
                }
                c
            }
        };
        // Dense class mapping in sorted raw-value order (deterministic).
        let mut class_values: Vec<u16> = raw_values.clone();
        class_values.sort_unstable();
        class_values.dedup();
        let labels = raw_values
            .iter()
            .map(|v| class_values.binary_search(v).unwrap() as u16)
            .collect();
        Self {
            rows,
            cards,
            labels,
            class_values,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of categorical columns.
    pub fn n_cols(&self) -> usize {
        self.cards.len()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.class_values.len()
    }

    /// Column cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Row `i`.
    pub fn row(&self, i: usize) -> &[u16] {
        &self.rows[i]
    }

    /// Dense class label of row `i`.
    pub fn label(&self, i: usize) -> u16 {
        self.labels[i]
    }

    /// The raw value of dense class `c`.
    pub fn class_value(&self, c: u16) -> u16 {
        self.class_values[c as usize]
    }

    /// The raw label of row `i`.
    pub fn raw_label(&self, i: usize) -> u16 {
        self.class_value(self.labels[i])
    }

    /// Class histogram over a row-index subset.
    pub fn class_counts(&self, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &i in indices {
            counts[self.labels[i] as usize] += 1;
        }
        counts
    }

    /// The majority class over `indices` (smallest class wins ties);
    /// falls back to class 0 for an empty subset.
    pub fn majority_class(&self, indices: &[usize]) -> u16 {
        let counts = self.class_counts(indices);
        counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c as u16)
            .unwrap_or(0)
    }

    /// A new dataset over a row subset, preserving the class mapping and
    /// cardinalities (so models trained on folds agree on spaces).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        let labels: Vec<u16> = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            rows,
            cards: self.cards.clone(),
            labels,
            class_values: self.class_values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]],
            vec![40, 10, 40, 99],
            None,
        )
    }

    #[test]
    fn class_mapping_is_sorted_and_dense() {
        let d = sample();
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_value(0), 10);
        assert_eq!(d.class_value(1), 40);
        assert_eq!(d.class_value(2), 99);
        assert_eq!(d.label(0), 1);
        assert_eq!(d.raw_label(3), 99);
    }

    #[test]
    fn inferred_cardinalities() {
        let d = sample();
        assert_eq!(d.cards(), &[2, 2]);
        assert_eq!(d.n_cols(), 2);
        assert_eq!(d.n_rows(), 4);
    }

    #[test]
    fn explicit_cardinalities_are_respected() {
        let d = Dataset::new(vec![vec![0], vec![1]], vec![5, 5], Some(vec![7]));
        assert_eq!(d.cards(), &[7]);
    }

    #[test]
    #[should_panic(expected = "exceeds cardinality")]
    fn explicit_cardinalities_are_checked() {
        Dataset::new(vec![vec![3]], vec![1], Some(vec![2]));
    }

    #[test]
    fn class_counts_and_majority() {
        let d = sample();
        assert_eq!(d.class_counts(&[0, 1, 2, 3]), vec![1, 2, 1]);
        assert_eq!(d.majority_class(&[0, 1, 2, 3]), 1);
        // Tie between class 0 (one row) and class 2 (one row) → smaller.
        assert_eq!(d.majority_class(&[1, 3]), 0);
        assert_eq!(d.majority_class(&[]), 0);
    }

    #[test]
    fn subset_preserves_spaces() {
        let d = sample();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.n_classes(), 3, "class space survives subsetting");
        assert_eq!(s.cards(), d.cards());
        assert_eq!(s.raw_label(0), 99);
        assert_eq!(s.row(1), d.row(0));
    }
}
