//! Categorical training data: column-major attribute levels with
//! raw-value labels remapped to dense classes.

use std::sync::Arc;

/// A labeled categorical dataset.
///
/// Storage is **column-major**: one `Arc<[u16]>` level column per
/// attribute. Tree splits and distance sweeps read whole columns (cache
/// friendly), and columns built by [`Dataset::from_columns`] can alias a
/// shared attribute arena zero-copy instead of cloning every carrier's
/// attr row. Labels arrive as raw parameter values and are remapped to
/// dense class indices internally; [`Dataset::class_value`] maps back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    columns: Vec<Arc<[u16]>>,
    n_rows: usize,
    cards: Vec<usize>,
    labels: Vec<u16>,
    class_values: Vec<u16>,
}

impl Dataset {
    /// Builds a dataset from row-major categorical rows and raw-value
    /// labels (transposed into columns). Column cardinalities may be given
    /// explicitly (so train/test splits agree on level spaces) or inferred
    /// as `max level + 1`.
    ///
    /// # Panics
    /// Panics on empty data, ragged rows, or levels exceeding an explicit
    /// cardinality.
    pub fn new(rows: Vec<Vec<u16>>, raw_values: Vec<u16>, cards: Option<Vec<usize>>) -> Self {
        assert!(!rows.is_empty(), "dataset needs at least one row");
        let n_cols = rows[0].len();
        let mut columns: Vec<Vec<u16>> = vec![Vec::with_capacity(rows.len()); n_cols];
        for row in &rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            for (col, &v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Self::from_columns(
            columns.into_iter().map(Arc::from).collect(),
            raw_values,
            cards,
        )
    }

    /// Builds a dataset directly from level columns — the zero-copy path:
    /// columns may alias a shared attribute arena.
    ///
    /// # Panics
    /// Panics on empty data, unequal column lengths, or levels exceeding
    /// an explicit cardinality.
    pub fn from_columns(
        columns: Vec<Arc<[u16]>>,
        raw_values: Vec<u16>,
        cards: Option<Vec<usize>>,
    ) -> Self {
        let n_rows = raw_values.len();
        assert!(n_rows > 0, "dataset needs at least one row");
        for col in &columns {
            assert_eq!(col.len(), n_rows, "column/label length mismatch");
        }
        let cards = match cards {
            Some(c) => {
                assert_eq!(c.len(), columns.len(), "cardinality vector length mismatch");
                for (j, (col, &card)) in columns.iter().zip(&c).enumerate() {
                    if let Some(&v) = col.iter().find(|&&v| v as usize >= card) {
                        panic!("level {v} exceeds cardinality of column {j}");
                    }
                }
                c
            }
            None => columns
                .iter()
                .map(|col| col.iter().map(|&v| v as usize + 1).max().unwrap_or(1))
                .collect(),
        };
        // Dense class mapping in sorted raw-value order (deterministic).
        let mut class_values: Vec<u16> = raw_values.clone();
        class_values.sort_unstable();
        class_values.dedup();
        let labels = raw_values
            .iter()
            .map(|v| class_values.binary_search(v).unwrap() as u16)
            .collect();
        Self {
            columns,
            n_rows,
            cards,
            labels,
            class_values,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of categorical columns.
    pub fn n_cols(&self) -> usize {
        self.cards.len()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.class_values.len()
    }

    /// Column cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Level of row `i` in column `j`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> u16 {
        self.columns[j][i]
    }

    /// Column `j`'s levels, one per row.
    #[inline]
    pub fn column(&self, j: usize) -> &[u16] {
        &self.columns[j]
    }

    /// Column `j`'s shared handle — lets callers (and tests) check that a
    /// dataset aliases an arena column instead of owning a copy.
    pub fn column_arc(&self, j: usize) -> Arc<[u16]> {
        Arc::clone(&self.columns[j])
    }

    /// Gathers row `i` into `out` (cleared first) in column order — for
    /// callers that need a contiguous feature row (encoders, predictors).
    pub fn row_into(&self, i: usize, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.columns.iter().map(|col| col[i]));
    }

    /// Row `i` as a fresh vector (test/diagnostic convenience; hot loops
    /// should reuse a buffer via [`Dataset::row_into`]).
    pub fn row_vec(&self, i: usize) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.n_cols());
        self.row_into(i, &mut out);
        out
    }

    /// Dense class label of row `i`.
    pub fn label(&self, i: usize) -> u16 {
        self.labels[i]
    }

    /// The raw value of dense class `c`.
    pub fn class_value(&self, c: u16) -> u16 {
        self.class_values[c as usize]
    }

    /// The raw label of row `i`.
    pub fn raw_label(&self, i: usize) -> u16 {
        self.class_value(self.labels[i])
    }

    /// Class histogram over a row-index subset.
    pub fn class_counts(&self, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &i in indices {
            counts[self.labels[i] as usize] += 1;
        }
        counts
    }

    /// The majority class over `indices` (smallest class wins ties);
    /// falls back to class 0 for an empty subset.
    pub fn majority_class(&self, indices: &[usize]) -> u16 {
        let counts = self.class_counts(indices);
        counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c as u16)
            .unwrap_or(0)
    }

    /// A new dataset over a row subset, preserving the class mapping and
    /// cardinalities (so models trained on folds agree on spaces).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| indices.iter().map(|&i| col[i]).collect())
            .collect();
        let labels: Vec<u16> = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            columns,
            n_rows: indices.len(),
            cards: self.cards.clone(),
            labels,
            class_values: self.class_values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]],
            vec![40, 10, 40, 99],
            None,
        )
    }

    #[test]
    fn class_mapping_is_sorted_and_dense() {
        let d = sample();
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_value(0), 10);
        assert_eq!(d.class_value(1), 40);
        assert_eq!(d.class_value(2), 99);
        assert_eq!(d.label(0), 1);
        assert_eq!(d.raw_label(3), 99);
    }

    #[test]
    fn inferred_cardinalities() {
        let d = sample();
        assert_eq!(d.cards(), &[2, 2]);
        assert_eq!(d.n_cols(), 2);
        assert_eq!(d.n_rows(), 4);
    }

    #[test]
    fn explicit_cardinalities_are_respected() {
        let d = Dataset::new(vec![vec![0], vec![1]], vec![5, 5], Some(vec![7]));
        assert_eq!(d.cards(), &[7]);
    }

    #[test]
    #[should_panic(expected = "exceeds cardinality")]
    fn explicit_cardinalities_are_checked() {
        Dataset::new(vec![vec![3]], vec![1], Some(vec![2]));
    }

    #[test]
    fn class_counts_and_majority() {
        let d = sample();
        assert_eq!(d.class_counts(&[0, 1, 2, 3]), vec![1, 2, 1]);
        assert_eq!(d.majority_class(&[0, 1, 2, 3]), 1);
        // Tie between class 0 (one row) and class 2 (one row) → smaller.
        assert_eq!(d.majority_class(&[1, 3]), 0);
        assert_eq!(d.majority_class(&[]), 0);
    }

    #[test]
    fn subset_preserves_spaces() {
        let d = sample();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.n_classes(), 3, "class space survives subsetting");
        assert_eq!(s.cards(), d.cards());
        assert_eq!(s.raw_label(0), 99);
        assert_eq!(s.row_vec(1), d.row_vec(0));
    }

    #[test]
    fn rows_transpose_into_columns() {
        let d = sample();
        assert_eq!(d.column(0), &[0, 1, 0, 1]);
        assert_eq!(d.column(1), &[1, 0, 0, 1]);
        assert_eq!(d.at(3, 1), 1);
        assert_eq!(d.row_vec(1), vec![1, 0]);
    }

    #[test]
    fn from_columns_aliases_without_copying() {
        let col: Arc<[u16]> = Arc::from(vec![0u16, 1, 2]);
        let d = Dataset::from_columns(vec![Arc::clone(&col)], vec![9, 9, 9], None);
        assert!(Arc::ptr_eq(&d.columns[0], &col), "zero-copy column alias");
        assert_eq!(d.cards(), &[3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_columns_checks_lengths() {
        Dataset::from_columns(vec![Arc::from(vec![0u16, 1])], vec![1, 2, 3], None);
    }
}
