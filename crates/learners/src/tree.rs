//! Decision-tree classifier: Gini splits, expanded until leaves are pure
//! (§4.2 "Gini score to determine how to split and the tree is expanded
//! until all leaves are pure").
//!
//! Splits are binary on `(column == level)` — exactly what an axis-aligned
//! split on a one-hot encoded column does, so this matches the paper's
//! scikit-learn setup without materializing the one-hot expansion.
//!
//! The tree also exposes its decision path ([`TreeModel::decision_path`])
//! because explainability is the reason the paper's engineers liked this
//! learner (Fig. 8).

use crate::dataset::Dataset;
use crate::{Classifier, Model};
use auric_stats::impurity::gini;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Decision-tree hyperparameters.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth; `None` = expand until pure (the paper's setting).
    pub max_depth: Option<usize>,
}

impl DecisionTree {
    /// The paper's configuration: unlimited depth, Gini, pure leaves.
    pub fn paper() -> Self {
        Self { max_depth: None }
    }

    /// Fits and returns the concrete [`TreeModel`] (rather than a boxed
    /// [`Model`]), giving access to [`TreeModel::decision_path`] for
    /// Fig. 8 style explanations.
    pub fn fit_tree(&self, data: &Dataset) -> TreeModel {
        build_tree(
            data,
            &BuildParams {
                max_depth: self.max_depth,
                feature_subset: None,
                seed: 0,
            },
        )
    }
}

impl Classifier for DecisionTree {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        Box::new(build_tree(
            data,
            &BuildParams {
                max_depth: self.max_depth,
                feature_subset: None,
                seed: 0,
            },
        ))
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

/// Internal build parameters (the forest reuses the builder with feature
/// subsampling).
#[derive(Debug, Clone)]
pub(crate) struct BuildParams {
    pub max_depth: Option<usize>,
    /// Number of candidate columns per split (`None` = all).
    pub feature_subset: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

/// One node of a fitted tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        class: u16,
    },
    Split {
        col: usize,
        level: u16,
        /// Child when `row[col] == level`.
        eq: usize,
        /// Child when `row[col] != level`.
        ne: usize,
    },
}

/// One step of a decision path (for explanations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Column the node tested.
    pub col: usize,
    /// Level it compared against.
    pub level: u16,
    /// Whether the row matched (`row[col] == level`).
    pub matched: bool,
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct TreeModel {
    nodes: Vec<Node>,
    class_values: Vec<u16>,
}

impl TreeModel {
    /// Predicts the dense class index (the forest aggregates these).
    pub(crate) fn predict_class(&self, row: &[u16]) -> u16 {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                Node::Leaf { class } => return class,
                Node::Split { col, level, eq, ne } => {
                    at = if row[col] == level { eq } else { ne };
                }
            }
        }
    }

    /// The sequence of tests the tree applied to `row` — a Fig. 8 style
    /// explanation of the recommendation.
    pub fn decision_path(&self, row: &[u16]) -> Vec<PathStep> {
        let mut at = 0usize;
        let mut path = Vec::new();
        loop {
            match self.nodes[at] {
                Node::Leaf { .. } => return path,
                Node::Split { col, level, eq, ne } => {
                    let matched = row[col] == level;
                    path.push(PathStep {
                        col,
                        level,
                        matched,
                    });
                    at = if matched { eq } else { ne };
                }
            }
        }
    }

    /// Number of nodes (diagnostics; pure-leaf trees on noisy data grow
    /// large, which is part of the paper's story).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], at: usize) -> usize {
            match nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { eq, ne, .. } => 1 + depth_at(nodes, eq).max(depth_at(nodes, ne)),
            }
        }
        depth_at(&self.nodes, 0)
    }
}

impl Model for TreeModel {
    fn predict(&self, row: &[u16]) -> u16 {
        self.class_values[self.predict_class(row) as usize]
    }
}

/// Builds a tree over all rows of `data`.
pub(crate) fn build_tree(data: &Dataset, params: &BuildParams) -> TreeModel {
    let indices: Vec<usize> = (0..data.n_rows()).collect();
    build_tree_on(data, &indices, params)
}

/// Builds a tree over a row subset (the forest passes bootstrap samples).
pub(crate) fn build_tree_on(data: &Dataset, indices: &[usize], params: &BuildParams) -> TreeModel {
    let mut nodes = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    grow(data, indices, params, 0, &mut rng, &mut nodes);
    let class_values = (0..data.n_classes() as u16)
        .map(|c| data.class_value(c))
        .collect();
    TreeModel {
        nodes,
        class_values,
    }
}

/// Recursively grows the node for `indices`, returning its index.
fn grow(
    data: &Dataset,
    indices: &[usize],
    params: &BuildParams,
    depth: usize,
    rng: &mut ChaCha8Rng,
    nodes: &mut Vec<Node>,
) -> usize {
    let counts = data.class_counts(indices);
    let node_gini = gini(&counts);
    let majority = data.majority_class(indices);
    let depth_capped = params.max_depth.is_some_and(|d| depth >= d);
    if node_gini <= 0.0 || indices.is_empty() || depth_capped {
        nodes.push(Node::Leaf { class: majority });
        return nodes.len() - 1;
    }

    let candidate_cols = candidate_columns(data.n_cols(), params.feature_subset, rng);
    let best = best_split(data, indices, &counts, &candidate_cols);
    let Some((col, level, _gain)) = best else {
        // No split separates anything (identical rows, mixed labels).
        nodes.push(Node::Leaf { class: majority });
        return nodes.len() - 1;
    };

    let (eq_rows, ne_rows): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| data.at(i, col) == level);
    // Reserve this node's slot before growing children.
    let my = nodes.len();
    nodes.push(Node::Leaf { class: majority }); // placeholder
    let eq = grow(data, &eq_rows, params, depth + 1, rng, nodes);
    let ne = grow(data, &ne_rows, params, depth + 1, rng, nodes);
    nodes[my] = Node::Split { col, level, eq, ne };
    my
}

/// Picks the candidate columns for one split.
fn candidate_columns(n_cols: usize, subset: Option<usize>, rng: &mut ChaCha8Rng) -> Vec<usize> {
    match subset {
        None => (0..n_cols).collect(),
        Some(k) => {
            // Partial Fisher–Yates draw of k distinct columns.
            let mut cols: Vec<usize> = (0..n_cols).collect();
            let k = k.min(n_cols);
            for i in 0..k {
                let j = rng.random_range(i..n_cols);
                cols.swap(i, j);
            }
            cols.truncate(k);
            cols
        }
    }
}

/// Finds the `(column, level)` split with the largest Gini decrease over
/// `indices`; `None` when no split has positive gain.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    parent_counts: &[usize],
    cols: &[usize],
) -> Option<(usize, u16, f64)> {
    let n = indices.len();
    let parent_gini = gini(parent_counts);
    let n_classes = data.n_classes();
    let mut best: Option<(usize, u16, f64)> = None;
    for &col in cols {
        let card = data.cards()[col];
        // Joint (level, class) counts in one pass.
        let mut level_class = vec![0usize; card * n_classes];
        let mut level_totals = vec![0usize; card];
        let levels = data.column(col);
        for &i in indices {
            let l = levels[i] as usize;
            level_class[l * n_classes + data.label(i) as usize] += 1;
            level_totals[l] += 1;
        }
        for level in 0..card {
            let nl = level_totals[level];
            if nl == 0 || nl == n {
                continue; // split separates nothing
            }
            let eq_counts = &level_class[level * n_classes..(level + 1) * n_classes];
            let ne_counts: Vec<usize> = parent_counts
                .iter()
                .zip(eq_counts)
                .map(|(&p, &e)| p - e)
                .collect();
            let split =
                (nl as f64 * gini(eq_counts) + (n - nl) as f64 * gini(&ne_counts)) / n as f64;
            let gain = parent_gini - split;
            // Zero-gain splits are still taken (matching scikit-learn's
            // expand-until-pure behavior — this is how XOR-style
            // interactions get memorized); splits that separate nothing
            // were filtered above, so recursion always shrinks the node.
            let better = match best {
                None => true,
                // Deterministic tie-break: larger gain, then smaller
                // column, then smaller level.
                Some((bc, bl, bg)) => {
                    gain > bg + 1e-12
                        || ((gain - bg).abs() <= 1e-12 && (col, level as u16) < (bc, bl))
                }
            };
            if better {
                best = Some((col, level as u16, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels determined by column 0: level 0 → 10, level 1 → 20.
    fn simple_data() -> Dataset {
        Dataset::new(
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![1, 0],
                vec![1, 1],
                vec![0, 1],
                vec![1, 0],
            ],
            vec![10, 10, 20, 20, 10, 20],
            None,
        )
    }

    #[test]
    fn learns_a_single_split() {
        let model = DecisionTree::paper().fit(&simple_data());
        assert_eq!(model.predict(&[0, 1]), 10);
        assert_eq!(model.predict(&[1, 0]), 20);
    }

    #[test]
    fn memorizes_training_data_when_pure_splits_exist() {
        // XOR over two binary columns — impossible for a single split,
        // but a pure-leaf tree must still fit it exactly.
        let data = Dataset::new(
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
            vec![1, 2, 2, 1],
            None,
        );
        let model = build_tree(
            &data,
            &BuildParams {
                max_depth: None,
                feature_subset: None,
                seed: 0,
            },
        );
        for i in 0..data.n_rows() {
            assert_eq!(
                model.predict(&data.row_vec(i)),
                data.raw_label(i),
                "row {i}"
            );
        }
        assert!(model.depth() >= 2, "XOR needs two levels of splits");
    }

    #[test]
    fn identical_rows_with_mixed_labels_become_majority_leaf() {
        let data = Dataset::new(vec![vec![0], vec![0], vec![0]], vec![5, 5, 9], None);
        let model = DecisionTree::paper().fit(&data);
        assert_eq!(model.predict(&[0]), 5);
    }

    #[test]
    fn max_depth_limits_the_tree() {
        let data = Dataset::new(
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
            vec![1, 2, 2, 1],
            None,
        );
        let stump = build_tree(
            &data,
            &BuildParams {
                max_depth: Some(0),
                feature_subset: None,
                seed: 0,
            },
        );
        assert_eq!(stump.depth(), 0);
        assert_eq!(stump.n_nodes(), 1);
    }

    #[test]
    fn decision_path_explains_predictions() {
        let model = build_tree(
            &simple_data(),
            &BuildParams {
                max_depth: None,
                feature_subset: None,
                seed: 0,
            },
        );
        let path = model.decision_path(&[1, 0]);
        assert!(!path.is_empty());
        assert_eq!(path[0].col, 0, "first split is on the informative column");
        // Path for a matching row takes the eq branch.
        let level = path[0].level;
        assert_eq!(path[0].matched, 1 == level);
    }

    #[test]
    fn multiway_categories_are_handled() {
        // Column with 4 levels mapping onto 3 classes.
        let data = Dataset::new(
            vec![vec![0], vec![1], vec![2], vec![3], vec![0], vec![2]],
            vec![7, 8, 9, 9, 7, 9],
            None,
        );
        let model = DecisionTree::paper().fit(&data);
        assert_eq!(model.predict(&[0]), 7);
        assert_eq!(model.predict(&[1]), 8);
        assert_eq!(model.predict(&[2]), 9);
        assert_eq!(model.predict(&[3]), 9);
    }

    #[test]
    fn deterministic_fit() {
        let data = simple_data();
        let a = build_tree(
            &data,
            &BuildParams {
                max_depth: None,
                feature_subset: None,
                seed: 0,
            },
        );
        let b = build_tree(
            &data,
            &BuildParams {
                max_depth: None,
                feature_subset: None,
                seed: 0,
            },
        );
        assert_eq!(a.nodes, b.nodes);
    }
}
