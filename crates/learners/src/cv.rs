//! k-fold cross-validation — the paper's "standard machine learning
//! cross-validation approach to compute the accuracy scores" (§4.2).

use crate::dataset::Dataset;
use crate::Classifier;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Cross-validated accuracy of `classifier` on `data`: the fraction of
/// held-out rows whose predicted raw value equals the actual raw value,
/// pooled over all folds.
///
/// Rows are shuffled deterministically by `seed` before folding. `k` is
/// clamped to the row count; singleton datasets score against a model
/// trained on themselves (no held-out row exists).
pub fn cross_val_accuracy(classifier: &dyn Classifier, data: &Dataset, k: usize, seed: u64) -> f64 {
    assert!(k >= 2, "cross-validation needs k >= 2");
    let n = data.n_rows();
    if n < 2 {
        // Degenerate dataset: train == test is the only option.
        let model = classifier.fit(data);
        let hit = model.predict(&data.row_vec(0)) == data.raw_label(0);
        return if hit { 1.0 } else { 0.0 };
    }
    let k = k.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }

    let mut correct = 0usize;
    for fold in 0..k {
        // Striped folds: fold f takes positions f, f+k, f+2k, ...
        let test: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
        let train: Vec<usize> = order
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, i)| i)
            .collect();
        let model = classifier.fit(&data.subset(&train));
        let mut rowbuf = Vec::with_capacity(data.n_cols());
        for &i in &test {
            data.row_into(i, &mut rowbuf);
            if model.predict(&rowbuf) == data.raw_label(i) {
                correct += 1;
            }
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTree;

    fn clean_data(n: usize) -> Dataset {
        let rows: Vec<Vec<u16>> = (0..n)
            .map(|i| vec![(i % 3) as u16, (i % 7) as u16])
            .collect();
        let values: Vec<u16> = (0..n).map(|i| 10 * (i % 3) as u16).collect();
        Dataset::new(rows, values, None)
    }

    #[test]
    fn perfect_learner_scores_one() {
        let data = clean_data(60);
        let acc = cross_val_accuracy(&DecisionTree::paper(), &data, 5, 1);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn accuracy_is_deterministic_in_seed() {
        let data = clean_data(30);
        let a = cross_val_accuracy(&DecisionTree::paper(), &data, 3, 42);
        let b = cross_val_accuracy(&DecisionTree::paper(), &data, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_labels_lower_the_score() {
        let mut rows: Vec<Vec<u16>> = Vec::new();
        let mut values: Vec<u16> = Vec::new();
        for i in 0..100usize {
            rows.push(vec![(i % 2) as u16]);
            // 20% label noise.
            let clean = 10 * (i % 2) as u16;
            values.push(if i % 5 == 0 { 99 } else { clean });
        }
        let data = Dataset::new(rows, values, None);
        let acc = cross_val_accuracy(&DecisionTree::paper(), &data, 5, 7);
        assert!((0.6..1.0).contains(&acc), "acc {acc}");
    }

    #[test]
    fn every_row_is_tested_exactly_once() {
        // With a classifier that always predicts a constant, accuracy is
        // exactly the frequency of that constant — proving each row is
        // scored once.
        struct Constant;
        impl crate::Classifier for Constant {
            fn fit(&self, _d: &Dataset) -> Box<dyn crate::Model> {
                struct M;
                impl crate::Model for M {
                    fn predict(&self, _row: &[u16]) -> u16 {
                        7
                    }
                }
                Box::new(M)
            }
            fn name(&self) -> &'static str {
                "const"
            }
        }
        let rows: Vec<Vec<u16>> = (0..10).map(|i| vec![i as u16]).collect();
        let values = vec![7, 7, 7, 0, 0, 0, 0, 0, 0, 0];
        let data = Dataset::new(rows, values, None);
        let acc = cross_val_accuracy(&Constant, &data, 5, 0);
        assert!((acc - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tiny_datasets_do_not_panic() {
        let data = Dataset::new(vec![vec![0]], vec![1], None);
        let acc = cross_val_accuracy(&DecisionTree::paper(), &data, 5, 0);
        assert_eq!(acc, 1.0);
        let data2 = Dataset::new(vec![vec![0], vec![1]], vec![1, 2], None);
        let _ = cross_val_accuracy(&DecisionTree::paper(), &data2, 5, 0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_k_one() {
        cross_val_accuracy(&DecisionTree::paper(), &clean_data(10), 1, 0);
    }
}
