//! Lasso regression via cyclic coordinate descent — the §3.2 Eq. 1 sparse
//! linear dependency learner:
//!
//! ```text
//! minimize ‖Y − β·X‖₂² / (2n) + λ‖β‖₁
//! ```
//!
//! The paper motivates the L1 penalty as the mechanism that zeroes out the
//! coefficients of irrelevant attributes, "discovering sparse dependency
//! models". Auric ultimately prefers the chi-square test for that job, but
//! the Lasso remains both a baseline and a diagnostic: which one-hot
//! columns survive tells you which attributes matter.

use auric_stats::matrix::Matrix;

/// Lasso hyperparameters.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// L1 regularization strength λ (paper: λ ∈ [0, 1]).
    pub lambda: f64,
    /// Coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum coefficient change.
    pub tol: f64,
}

impl Default for Lasso {
    fn default() -> Self {
        Self {
            lambda: 0.1,
            max_iter: 1000,
            tol: 1e-7,
        }
    }
}

/// A fitted Lasso model: `y ≈ intercept + β · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LassoModel {
    pub intercept: f64,
    pub coefficients: Vec<f64>,
}

impl LassoModel {
    /// Predicts the response for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature width mismatch");
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(b, v)| b * v)
                .sum::<f64>()
    }

    /// Indices of features with non-zero coefficients — the discovered
    /// dependency structure.
    pub fn support(&self) -> Vec<usize> {
        self.coefficients
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Lasso {
    /// Fits on a design matrix `x` (rows = samples) and response `y`.
    ///
    /// # Panics
    /// Panics on shape mismatch or empty data.
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> LassoModel {
        let n = x.rows();
        let d = x.cols();
        assert!(n > 0, "lasso needs at least one sample");
        assert_eq!(y.len(), n, "response length mismatch");

        // Center y and every column so the (unpenalized) intercept drops
        // out of the coordinate updates; it is recovered at the end as
        // ȳ − β·x̄.
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let col_means: Vec<f64> = (0..d)
            .map(|j| (0..n).map(|i| x.get(i, j)).sum::<f64>() / n as f64)
            .collect();
        let mut beta = vec![0.0; d];
        let mut residual: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Squared norms of the centered columns.
        let col_sq: Vec<f64> = (0..d)
            .map(|j| {
                (0..n)
                    .map(|i| {
                        let v = x.get(i, j) - col_means[j];
                        v * v
                    })
                    .sum()
            })
            .collect();

        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..d {
                if col_sq[j] == 0.0 {
                    continue; // constant column carries no signal
                }
                // rho = x̃_j · (residual + β_j x̃_j)
                let mut rho = 0.0;
                for (i, r) in residual.iter().enumerate() {
                    rho += (x.get(i, j) - col_means[j]) * r;
                }
                rho += beta[j] * col_sq[j];
                let new_b = soft_threshold(rho / n as f64, self.lambda) / (col_sq[j] / n as f64);
                let delta = new_b - beta[j];
                if delta != 0.0 {
                    for (i, r) in residual.iter_mut().enumerate() {
                        *r -= delta * (x.get(i, j) - col_means[j]);
                    }
                    beta[j] = new_b;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        let intercept = y_mean - beta.iter().zip(&col_means).map(|(b, m)| b * m).sum::<f64>();
        LassoModel {
            intercept,
            coefficients: beta,
        }
    }
}

/// The soft-thresholding operator `S(z, γ) = sign(z)·max(|z|−γ, 0)`.
fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_a_sparse_linear_signal() {
        // y = 3*x0 - 2*x2; x1 is an irrelevant column. A mixed-radix
        // counter over 60 samples makes the three columns exactly
        // orthogonal, so the recovered coefficients are unambiguous.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let a = (i % 5) as f64;
                let b = ((i / 15) % 4) as f64;
                let c = ((i / 5) % 3) as f64;
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[2]).collect();
        let x = Matrix::from_rows(&rows);
        let model = Lasso {
            lambda: 0.01,
            max_iter: 2000,
            tol: 1e-10,
        }
        .fit(&x, &y);
        assert!(
            (model.coefficients[0] - 3.0).abs() < 0.1,
            "{:?}",
            model.coefficients
        );
        assert!((model.coefficients[2] + 2.0).abs() < 0.1);
        assert!(model.coefficients[1].abs() < 0.1);
    }

    #[test]
    fn heavy_penalty_zeroes_everything() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 4) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model = Lasso {
            lambda: 1e6,
            max_iter: 100,
            tol: 1e-9,
        }
        .fit(&x, &y);
        assert!(model.support().is_empty(), "λ→∞ kills all coefficients");
        // Prediction collapses to the mean.
        assert!((model.predict(&[2.0]) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn sparsity_grows_with_lambda() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 5) as f64, (i % 2) as f64, ((i / 3) % 4) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 2.0 * r[0] + 0.3 * r[1] + 0.05 * r[2])
            .collect();
        let x = Matrix::from_rows(&rows);
        let loose = Lasso {
            lambda: 0.001,
            ..Default::default()
        }
        .fit(&x, &y);
        let tight = Lasso {
            lambda: 0.5,
            ..Default::default()
        }
        .fit(&x, &y);
        assert!(tight.support().len() <= loose.support().len());
        assert!(!loose.support().is_empty());
    }

    #[test]
    fn intercept_handles_offset_data() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 3) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 100.0 + r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model = Lasso {
            lambda: 0.001,
            ..Default::default()
        }
        .fit(&x, &y);
        assert!((model.predict(&[1.0]) - 101.0).abs() < 0.1);
    }
}
