//! Random-forest classifier: 100 bootstrap-sampled Gini trees with √A
//! feature subsets per split, majority-vote aggregation (§4.2 "100 trees
//! in the forest, Gini score for decision to split, tree is expanded until
//! all leaves are pure").

use crate::dataset::Dataset;
use crate::tree::{build_tree_on, BuildParams, TreeModel};
use crate::{Classifier, Model};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Seed for bootstrap sampling and per-split feature subsets.
    pub seed: u64,
}

impl RandomForest {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            n_trees: 100,
            seed: 1,
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(self.n_trees > 0, "forest needs at least one tree");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = data.n_rows();
        let feature_subset = (data.n_cols() as f64).sqrt().ceil() as usize;
        let trees: Vec<TreeModel> = (0..self.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                build_tree_on(
                    data,
                    &sample,
                    &BuildParams {
                        max_depth: None,
                        feature_subset: Some(feature_subset),
                        seed: rng.random_range(0..u64::MAX),
                    },
                )
            })
            .collect();
        Box::new(ForestModel {
            trees,
            n_classes: data.n_classes(),
            class_values: (0..data.n_classes() as u16)
                .map(|c| data.class_value(c))
                .collect(),
        })
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

/// A fitted forest.
pub struct ForestModel {
    trees: Vec<TreeModel>,
    n_classes: usize,
    class_values: Vec<u16>,
}

impl Model for ForestModel {
    fn predict(&self, row: &[u16]) -> u16 {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict_class(row) as usize] += 1;
        }
        let winner = votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0);
        self.class_values[winner]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_clean_signal() {
        let data = Dataset::new(
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![1, 0],
                vec![1, 1],
                vec![0, 0],
                vec![1, 1],
            ],
            vec![10, 10, 20, 20, 10, 20],
            None,
        );
        let model = RandomForest {
            n_trees: 25,
            seed: 1,
        }
        .fit(&data);
        assert_eq!(model.predict(&[0, 1]), 10);
        assert_eq!(model.predict(&[1, 0]), 20);
    }

    #[test]
    fn averages_away_label_noise_better_than_one_tree() {
        // Clean dependence on col 0 plus one contradicting (noisy) row
        // duplicated so a single pure-leaf tree can latch onto it via the
        // second (irrelevant) column.
        let mut rows = Vec::new();
        let mut values = Vec::new();
        for i in 0..40u16 {
            rows.push(vec![i % 2, i % 5]);
            values.push(if i % 2 == 0 { 10 } else { 20 });
        }
        // Noise: one (0, 3)-shaped row labeled 20.
        rows.push(vec![0, 3]);
        values.push(20);
        let data = Dataset::new(rows, values, None);
        let forest = RandomForest {
            n_trees: 50,
            seed: 3,
        }
        .fit(&data);
        // The forest must still predict the clean signal at (0, 3).
        assert_eq!(forest.predict(&[0, 3]), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::new(
            vec![
                vec![0, 2],
                vec![1, 0],
                vec![2, 1],
                vec![0, 1],
                vec![1, 2],
                vec![2, 0],
            ],
            vec![1, 2, 3, 1, 2, 3],
            None,
        );
        let a = RandomForest {
            n_trees: 10,
            seed: 9,
        }
        .fit(&data);
        let b = RandomForest {
            n_trees: 10,
            seed: 9,
        }
        .fit(&data);
        for row in [[0u16, 0], [1, 1], [2, 2], [0, 2]] {
            assert_eq!(a.predict(&row), b.predict(&row));
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_empty_forest() {
        let data = Dataset::new(vec![vec![0]], vec![1], None);
        RandomForest {
            n_trees: 0,
            seed: 0,
        }
        .fit(&data);
    }
}
