//! The epoch-validated response cache: a bounded per-shard map from
//! [`ProbeKey`] to a served [`Body`], tagged with the model epoch that
//! produced it.
//!
//! Correctness rests on two mechanisms, either of which alone suffices:
//!
//! 1. **Clear on swap** — a successful hot refit clears the cache under
//!    the shard's control mutex, in the same critical section that swaps
//!    the model `Arc` and bumps the epoch.
//! 2. **Epoch validation** — every entry stores the epoch it was
//!    computed under, and `get` refuses (and drops) entries whose epoch
//!    differs from the caller's current epoch.
//!
//! So a stale-epoch body is never served even if an insert races a
//! refit: the insert tags the old epoch and the next lookup rejects it.
//!
//! Eviction is seeded-random over the occupied slots (a ChaCha stream
//! owned by the cache), so same-seed runs evict identically and the
//! whole serving report stays byte-for-byte reproducible.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

use crate::api::Body;
use crate::probe::ProbeKey;

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheLookup {
    /// A same-epoch body; serve it without touching the worker.
    Hit(Body),
    /// Nothing stored for this probe.
    Miss,
    /// An entry existed but carried a different epoch; it was dropped.
    Stale,
}

struct CacheEntry {
    epoch: u64,
    /// Index of this key in `slots` (for O(1) removal).
    slot: usize,
    body: Body,
}

/// Bounded, seeded-eviction response cache. Not thread-safe on its own —
/// it lives inside the shard's control mutex.
pub struct ResponseCache {
    capacity: usize,
    entries: HashMap<ProbeKey, CacheEntry>,
    /// Occupied keys, dense, for uniform eviction draws.
    slots: Vec<ProbeKey>,
    rng: ChaCha8Rng,
}

impl ResponseCache {
    /// An empty cache; `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            capacity,
            entries: HashMap::new(),
            slots: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks up `key` under the caller's current `epoch`. A stored body
    /// from any other epoch is evicted on sight and reported as
    /// [`CacheLookup::Stale`] — stale entries are never served.
    pub fn get(&mut self, key: &ProbeKey, epoch: u64) -> CacheLookup {
        match self.entries.get(key) {
            None => CacheLookup::Miss,
            Some(e) if e.epoch == epoch => CacheLookup::Hit(e.body.clone()),
            Some(_) => {
                self.remove(key);
                CacheLookup::Stale
            }
        }
    }

    /// Stores `body` for `key` under `epoch`. Returns `true` when a
    /// victim was evicted to make room (seeded-uniform over occupied
    /// slots). A zero-capacity cache stores nothing.
    pub fn insert(&mut self, key: ProbeKey, epoch: u64, body: Body) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(e) = self.entries.get_mut(&key) {
            e.epoch = epoch;
            e.body = body;
            return false;
        }
        let evicted = if self.slots.len() >= self.capacity {
            let victim = self.rng.random_range(0..self.slots.len());
            let victim_key = self.slots[victim].clone();
            self.remove(&victim_key);
            true
        } else {
            false
        };
        let slot = self.slots.len();
        self.slots.push(key.clone());
        self.entries.insert(key, CacheEntry { epoch, slot, body });
        evicted
    }

    /// Drops every entry (refit swap). Returns how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.slots.len();
        self.entries.clear();
        self.slots.clear();
        n
    }

    fn remove(&mut self, key: &ProbeKey) {
        let Some(e) = self.entries.remove(key) else {
            return;
        };
        self.slots.swap_remove(e.slot);
        // The former tail now lives in the vacated slot.
        if let Some(moved) = self.slots.get(e.slot) {
            self.entries
                .get_mut(&moved.clone())
                .expect("slot key has an entry")
                .slot = e.slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::CarrierId;

    fn key(c: u32) -> ProbeKey {
        ProbeKey::Singular {
            carrier: CarrierId(c),
        }
    }

    fn body(h: f64) -> Body {
        Body::KpiHealth(Some(h))
    }

    #[test]
    fn hit_miss_and_epoch_validation() {
        let mut c = ResponseCache::new(4, 7);
        assert!(matches!(c.get(&key(1), 0), CacheLookup::Miss));
        c.insert(key(1), 0, body(0.5));
        assert!(matches!(c.get(&key(1), 0), CacheLookup::Hit(_)));
        // Same key, newer epoch: the stale body must not be served.
        assert!(matches!(c.get(&key(1), 1), CacheLookup::Stale));
        // ... and it was dropped, not retried.
        assert!(matches!(c.get(&key(1), 1), CacheLookup::Miss));
        assert!(c.is_empty());
    }

    #[test]
    fn bounded_with_seeded_eviction() {
        let run = || {
            let mut c = ResponseCache::new(3, 99);
            let mut evictions = Vec::new();
            for i in 0..10u32 {
                if c.insert(key(i), 0, body(0.1)) {
                    evictions.push(i);
                }
                assert!(c.len() <= 3);
            }
            let survivors: Vec<bool> = (0..10u32)
                .map(|i| matches!(c.get(&key(i), 0), CacheLookup::Hit(_)))
                .collect();
            (evictions, survivors)
        };
        assert_eq!(run(), run(), "same seed, same eviction schedule");
        assert_eq!(run().0.len(), 7, "every over-capacity insert evicts");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResponseCache::new(0, 1);
        assert!(!c.insert(key(1), 0, body(0.5)));
        assert!(matches!(c.get(&key(1), 0), CacheLookup::Miss));
    }

    #[test]
    fn clear_reports_drop_count() {
        let mut c = ResponseCache::new(8, 1);
        for i in 0..5u32 {
            c.insert(key(i), 0, body(0.2));
        }
        assert_eq!(c.clear(), 5);
        assert!(matches!(c.get(&key(0), 0), CacheLookup::Miss));
    }
}
