//! Request → serving-probe resolution: the packed-key serving index.
//!
//! A [`ProbeKey`] is the *complete functional identity* of a request
//! under a fixed `(model epoch, snapshot, KPI report)`: two requests
//! with equal probes are guaranteed to produce byte-identical primary
//! bodies, so the shard may compute one and fan the answer out — or
//! serve it straight from the epoch-validated response cache.
//!
//! Cold-start and pairwise requests resolve to the packed `u128` vote
//! key of every fitted parameter (the PR 6 top-aligned codec: one
//! integer per parameter, resolved **once at admission**) plus the exact
//! planned-neighbor list — the only other input the local-vote path
//! reads. Singular and KPI requests are keyed by carrier id: the model
//! answers them from the carrier's fitted state alone.
//!
//! Resolution returns `None` when the model cannot hand out integer
//! handles (a layout wider than 128 bits, or a model that does not
//! cover the catalog); such requests are served unbatched and uncached,
//! never guessed about.

use auric_core::CfModel;
use auric_model::{CarrierId, NetworkSnapshot};

use crate::api::RequestKind;

/// An equality-comparable serving handle. `Ord` sorts by the packed key
/// vectors first, so a batch sorted by `ProbeKey` walks each frozen
/// key-sorted vote table as sequential runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProbeKey {
    /// Packed singular keys of the new carrier's attributes + the exact
    /// planned-neighbor list (vote order matters to tie-breaks).
    ColdStart {
        keys: Vec<u128>,
        neighbors: Vec<CarrierId>,
    },
    /// Packed pair keys toward `neighbor`, plus the planned-neighbor
    /// list the local vote scans. An unknown neighbor keys on the empty
    /// key vector: its body is the deterministic empty set.
    Pairwise {
        keys: Vec<u128>,
        neighbor: CarrierId,
        neighbors: Vec<CarrierId>,
    },
    /// Existing-carrier singular service: the carrier id *is* the key.
    Singular { carrier: CarrierId },
    /// KPI health lookup from the shard's cached report.
    Kpi { carrier: CarrierId },
}

/// Resolves a request to its probe under `model`. `None` means "no
/// integer handle": serve it unbatched.
pub fn resolve(
    model: &CfModel,
    snapshot: &NetworkSnapshot,
    kind: &RequestKind,
) -> Option<ProbeKey> {
    match kind {
        RequestKind::ColdStart(nc) => Some(ProbeKey::ColdStart {
            keys: model.probe_singular(snapshot, &nc.attrs)?,
            neighbors: nc.neighbors.clone(),
        }),
        RequestKind::Pairwise {
            new_carrier,
            neighbor,
        } => {
            let keys = if neighbor.index() < snapshot.n_carriers() {
                let dst = &snapshot.carrier(*neighbor).attrs;
                model.probe_pairwise(snapshot, &new_carrier.attrs, dst)?
            } else {
                // No relation to configure; the primary body is empty
                // regardless of the new carrier's attributes.
                Vec::new()
            };
            Some(ProbeKey::Pairwise {
                keys,
                neighbor: *neighbor,
                neighbors: new_carrier.neighbors.clone(),
            })
        }
        RequestKind::Singular { carrier } => Some(ProbeKey::Singular { carrier: *carrier }),
        RequestKind::Kpi { carrier } => Some(ProbeKey::Kpi { carrier: *carrier }),
    }
}
