//! Seeded shard-level fault injection, mirroring `auric_ems::fault`:
//! rates + seed = a reproducible chaos schedule. Request-path faults
//! (latency spike, worker panic) are drawn from one ChaCha stream in
//! admission order; refit-path faults (refit failure, poisoned model)
//! from a second stream in refit order, so adding requests never shifts
//! the refit fault sequence and vice versa.

use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Independent per-opportunity fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardFaultRates {
    /// Per admitted request: virtual service time is multiplied by the
    /// spike factor (queue pressure + deadline pressure downstream).
    pub latency_spike: f64,
    /// Per admitted request: the worker's primary path panics once; the
    /// per-request `catch_unwind` must contain it and the fallback chain
    /// must still answer.
    pub worker_panic: f64,
    /// Per successful refit: the swapped-in model is poisoned — every
    /// primary-path call panics until the shard restarts.
    pub poisoned_shard: f64,
    /// Per refit: the refit itself fails; the shard keeps serving the
    /// stale model.
    pub refit_failure: f64,
}

impl ShardFaultRates {
    /// All rates zero — faultless serving.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every fault at the same rate `r`.
    pub fn uniform(r: f64) -> Self {
        Self {
            latency_spike: r,
            worker_panic: r,
            poisoned_shard: r,
            refit_failure: r,
        }
    }
}

/// A seeded chaos schedule for the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    pub seed: u64,
    pub rates: ShardFaultRates,
}

impl ShardFaultPlan {
    /// A transparent plan (all rates zero).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            rates: ShardFaultRates::none(),
        }
    }

    /// Every fault at rate `r`.
    pub fn uniform(seed: u64, r: f64) -> Self {
        Self {
            seed,
            rates: ShardFaultRates::uniform(r),
        }
    }
}

/// How often each fault actually fired on one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFaultCounts {
    pub latency_spikes: u64,
    pub worker_panics: u64,
    pub poisoned_models: u64,
    pub refit_failures: u64,
}

impl ShardFaultCounts {
    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.latency_spikes + self.worker_panics + self.poisoned_models + self.refit_failures
    }
}

/// Request-path fault draws for one admitted request, in fixed draw
/// order so the RNG stream stays aligned with the admission sequence.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RequestFaults {
    pub latency_spike: bool,
    pub worker_panic: bool,
}

pub(crate) fn draw_request_faults(rng: &mut impl RngExt, rates: &ShardFaultRates) -> RequestFaults {
    RequestFaults {
        latency_spike: rng.random_bool(rates.latency_spike),
        worker_panic: rng.random_bool(rates.worker_panic),
    }
}

/// Refit-path fault draws, in fixed draw order.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RefitFaults {
    pub refit_failure: bool,
    pub poisoned: bool,
}

pub(crate) fn draw_refit_faults(rng: &mut impl RngExt, rates: &ShardFaultRates) -> RefitFaults {
    RefitFaults {
        refit_failure: rng.random_bool(rates.refit_failure),
        poisoned: rng.random_bool(rates.poisoned_shard),
    }
}

/// The payload type of every *injected* worker panic. The process panic
/// hook is taught to stay silent for this payload only, so chaos runs
/// don't spray backtraces while genuine panics still report normally.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// Installs (once) a panic hook that suppresses [`InjectedPanic`]
/// payloads and delegates everything else to the previous hook.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}
