//! One per-market model shard: an `Arc`-swappable CF model behind a
//! worker thread, a virtual-time admission queue, a panic-containment
//! boundary, and the Warming → Ready → Degraded → Draining state
//! machine.
//!
//! ## Determinism model
//!
//! Admission control runs entirely in *virtual* time: each request
//! carries its simulated submission instant, the shard tracks when its
//! single worker would finish each admitted request, and queue depth /
//! deadline / breaker decisions are made from that state under the
//! shard's control mutex. Fault draws happen at admission, in admission
//! order, from a per-shard seeded stream. As long as each market's
//! requests are submitted in `submitted_us` order (one client thread per
//! market in the load generator), every admission decision — and hence
//! the whole chaos report — is a pure function of (snapshot, models,
//! schedule, fault plan seed). The worker thread still *really executes*
//! every admitted request, with a per-request `catch_unwind`, so panic
//! containment and `Arc` hot-swaps are exercised for real; its results
//! are deterministic because the model and inputs are.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use auric_core::recommend::{recommend_pairwise, recommend_singular, ConfigRecommendation};
use auric_core::{CfModel, DeltaApply, DeltaFitReport, Scope, SharedKeyColumns};
use auric_kpi::report::KpiReport;
use auric_model::{AppliedBatch, AttrArena, MarketId, NetworkSnapshot, ParamKind};
use auric_obs::Recorder;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::api::{Answer, Body, DegradeReason, Rejection, Request, RequestKind, ShardState};
use crate::breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
use crate::cache::{CacheLookup, ResponseCache};
use crate::fault::{
    draw_refit_faults, draw_request_faults, InjectedPanic, ShardFaultCounts, ShardFaultPlan,
};
use crate::probe::{self, ProbeKey};
use rand::SeedableRng;
use std::collections::HashMap;

/// Virtual service cost (µs) per request kind, and the latency-spike
/// multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceCosts {
    pub cold_start_us: u64,
    pub pairwise_us: u64,
    pub singular_us: u64,
    pub kpi_us: u64,
    /// Cost of serving straight from the response cache (no worker).
    pub cache_hit_us: u64,
    /// Cost of fanning a coalesced batch-mate's answer out (no worker).
    pub coalesced_us: u64,
    /// A latency-spike fault multiplies the request's cost by this.
    pub spike_factor: u64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        Self {
            cold_start_us: 400,
            pairwise_us: 250,
            singular_us: 150,
            kpi_us: 50,
            cache_hit_us: 20,
            coalesced_us: 25,
            spike_factor: 20,
        }
    }
}

impl ServiceCosts {
    fn base(&self, kind: &RequestKind) -> u64 {
        match kind {
            RequestKind::ColdStart(_) => self.cold_start_us,
            RequestKind::Pairwise { .. } => self.pairwise_us,
            RequestKind::Singular { .. } => self.singular_us,
            RequestKind::Kpi { .. } => self.kpi_us,
        }
    }
}

/// Shard policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Admitted-but-unfinished requests the virtual queue holds
    /// (in-service included) before `Overloaded` rejections.
    pub queue_capacity: usize,
    /// Contained panics since the last restart that trip the shard to
    /// Degraded. Kept above the breaker's `trip_after` so a panic storm
    /// opens the breaker first and degrades the shard second.
    pub panic_threshold: u32,
    /// Simulated µs a (re)started shard spends Warming.
    pub warmup_us: u64,
    /// Simulated µs between degrading and the automatic restart.
    pub restart_delay_us: u64,
    /// Largest admission batch processed as one coalescing group;
    /// `call_batch` splits longer inputs into chunks of this size.
    pub max_batch: usize,
    /// Response-cache entries per shard; `0` disables caching (the
    /// unbatched/uncached A/B baseline).
    pub cache_capacity: usize,
    pub breaker: BreakerConfig,
    pub costs: ServiceCosts,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            panic_threshold: 5,
            warmup_us: 20_000,
            restart_delay_us: 100_000,
            max_batch: 8,
            cache_capacity: 256,
            breaker: BreakerConfig::default(),
            costs: ServiceCosts::default(),
        }
    }
}

/// Typed refit failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefitError {
    /// The refit addressed a market the service has no shard for.
    UnknownMarket,
    /// The fault plan injected a refit failure; the stale model stays.
    Injected,
    /// The serialized model failed to load (see
    /// [`auric_core::ModelLoadError`]); the stale model stays.
    Load(auric_core::ModelLoadError),
}

impl std::fmt::Display for RefitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitError::UnknownMarket => write!(f, "refit addressed an unknown market"),
            RefitError::Injected => write!(f, "refit failed (injected fault); stale model kept"),
            RefitError::Load(e) => write!(f, "refit model rejected: {e}; stale model kept"),
        }
    }
}

impl std::error::Error for RefitError {}

/// Per-rejection-kind counters (shard level; `UnknownMarket` is counted
/// by the service front door).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionCounts {
    pub draining: u64,
    pub breaker_open: u64,
    pub overloaded: u64,
    pub deadline_expired: u64,
}

impl RejectionCounts {
    pub fn total(&self) -> u64 {
        self.draining + self.breaker_open + self.overloaded + self.deadline_expired
    }
}

/// A deterministic snapshot of one shard's lifetime accounting, for the
/// chaos report and the invariant checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    pub market: u16,
    pub state: ShardState,
    /// Requests past admission control (exactly these reach the worker).
    pub admitted: u64,
    /// First-class answers.
    pub answered: u64,
    /// Degraded answers (fallback chain, warming/degraded service).
    pub degraded_answers: u64,
    pub rejected: RejectionCounts,
    /// Panics the per-request `catch_unwind` contained.
    pub panics_contained: u64,
    pub faults: ShardFaultCounts,
    pub breaker: BreakerStats,
    pub refits_ok: u64,
    pub refits_failed: u64,
    /// Model swaps since construction (initial model is epoch 0).
    pub model_epoch: u64,
    /// Jobs the worker thread actually executed. The chaos invariant
    /// `dispatched + cache_hits + coalesced == admitted` proves
    /// shed/rejected requests did no shard work and every admitted
    /// request was either executed once, served from cache, or fanned
    /// out from a coalesced batch-mate.
    pub dispatched: u64,
    /// Admitted requests served from the epoch-validated response cache.
    pub cache_hits: u64,
    /// Admitted requests that shared a batch-mate's model lookup.
    pub coalesced: u64,
    /// Total virtual µs of booked service time (the busy ledger the
    /// bench divides answers by for honest virtual throughput).
    pub busy_us: u64,
    pub restarts: u64,
}

/// Mutable shard control state, all under one mutex so admission
/// decisions and post-completion accounting are serialized per shard.
struct ShardCtl {
    state: ShardState,
    warm_until_us: u64,
    restart_at_us: Option<u64>,
    poisoned: bool,
    panics_since_restart: u32,
    /// Virtual instant the worker finishes its last admitted request.
    virtual_done_us: u64,
    /// Virtual completion instants of admitted, unfinished requests.
    inflight: VecDeque<u64>,
    breaker: CircuitBreaker,
    request_rng: ChaCha8Rng,
    refit_rng: ChaCha8Rng,
    /// Epoch-validated response cache (seeded eviction stream).
    cache: ResponseCache,
    // Deterministic lifetime accounting.
    admitted: u64,
    answered: u64,
    degraded_answers: u64,
    rejected: RejectionCounts,
    panics_contained: u64,
    faults: ShardFaultCounts,
    refits_ok: u64,
    refits_failed: u64,
    model_epoch: u64,
    cache_hits: u64,
    coalesced: u64,
    busy_us: u64,
    restarts: u64,
}

/// What the admission decided for an admitted request.
struct Admission {
    /// Virtual completion instant.
    done_us: u64,
    /// Serve mode the worker should use.
    mode: ServeMode,
    /// State that serves the request (for the answer + histograms).
    state: ShardState,
}

/// Where one batched request goes after admission + classification.
enum Disposition {
    /// A typed rejection, already counted at admission.
    Reject(Rejection),
    /// Served from the response cache: no worker dispatch at all.
    CacheHit {
        done_us: u64,
        state: ShardState,
        body: Body,
    },
    /// Coalesced onto the lead at `reqs[lead]` (same probe, same batch):
    /// the lead's answer fans out here.
    Member {
        lead: usize,
        done_us: u64,
        state: ShardState,
    },
    /// Executes on the worker. `key` is `Some` for cacheable lookups
    /// (Ready-state primary service, no injected/poisoned panic).
    Lead {
        admission: Admission,
        key: Option<ProbeKey>,
    },
}

#[derive(Debug, Clone, Copy)]
enum ServeMode {
    /// Full service: primary path, fallback chain on panic.
    Primary { inject_panic: bool, poisoned: bool },
    /// Warming/Degraded service: market-mode only, explicit reason.
    MarketMode(DegradeReason),
}

/// One unit of worker work. Carries the `(snapshot, model)` pair read
/// under the control mutex at admission, so the whole batch — probe
/// resolution, execution, and cache tagging — sees one consistent epoch
/// even if a refit swaps the shard's snapshot or model mid-flight.
struct Job {
    kind: RequestKind,
    mode: ServeMode,
    snapshot: Arc<NetworkSnapshot>,
    model: Arc<CfModel>,
    reply: mpsc::SyncSender<WorkerReply>,
}

struct WorkerReply {
    body: Body,
    degraded: bool,
    reason: Option<DegradeReason>,
    /// A panic was contained while serving this request.
    panicked: bool,
}

/// A per-market shard. Construct via the service.
pub struct Shard {
    market: MarketId,
    /// The fleet this shard serves against, `Arc`-swapped together with
    /// the model by [`Shard::refit_delta`] (streaming ingestion). Plain
    /// [`Shard::refit`] leaves it in place.
    snapshot: RwLock<Arc<NetworkSnapshot>>,
    model: Arc<RwLock<Arc<CfModel>>>,
    config: ShardConfig,
    plan: ShardFaultPlan,
    ctl: Mutex<ShardCtl>,
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    /// Jobs the worker actually executed (the "shard work" ledger).
    dispatched: Arc<AtomicU64>,
    obs: Recorder,
}

fn mix_seed(seed: u64, market: u16, stream: u64) -> u64 {
    seed ^ (u64::from(market) + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

impl Shard {
    /// Builds the shard and starts its worker thread. The shard begins
    /// Warming and becomes Ready once `config.warmup_us` of simulated
    /// time has passed.
    pub fn new(
        market: MarketId,
        snapshot: Arc<NetworkSnapshot>,
        model: CfModel,
        kpi: Arc<Option<KpiReport>>,
        plan: ShardFaultPlan,
        config: ShardConfig,
        obs: Recorder,
    ) -> Self {
        crate::fault::silence_injected_panics();
        let model = Arc::new(RwLock::new(Arc::new(model)));
        let dispatched = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<Job>();
        let worker = {
            let dispatched = Arc::clone(&dispatched);
            std::thread::spawn(move || worker_loop(rx, kpi, dispatched))
        };
        let m = market.0;
        let ctl = ShardCtl {
            state: ShardState::Warming,
            warm_until_us: config.warmup_us,
            restart_at_us: None,
            poisoned: false,
            panics_since_restart: 0,
            virtual_done_us: 0,
            inflight: VecDeque::new(),
            breaker: CircuitBreaker::new(config.breaker, mix_seed(plan.seed, m, 2)),
            request_rng: ChaCha8Rng::seed_from_u64(mix_seed(plan.seed, m, 0)),
            refit_rng: ChaCha8Rng::seed_from_u64(mix_seed(plan.seed, m, 1)),
            cache: ResponseCache::new(config.cache_capacity, mix_seed(plan.seed, m, 3)),
            admitted: 0,
            answered: 0,
            degraded_answers: 0,
            rejected: RejectionCounts::default(),
            panics_contained: 0,
            faults: ShardFaultCounts::default(),
            refits_ok: 0,
            refits_failed: 0,
            model_epoch: 0,
            cache_hits: 0,
            coalesced: 0,
            busy_us: 0,
            restarts: 0,
        };
        Self {
            market,
            snapshot: RwLock::new(snapshot),
            model,
            config,
            plan,
            ctl: Mutex::new(ctl),
            tx: Some(tx),
            worker: Some(worker),
            dispatched,
            obs,
        }
    }

    pub fn market(&self) -> MarketId {
        self.market
    }

    /// The current model `Arc` (hot-swapped by refits).
    pub fn model(&self) -> Arc<CfModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    /// The fleet snapshot this shard currently serves against
    /// (hot-swapped by [`Shard::refit_delta`]).
    pub fn snapshot(&self) -> Arc<NetworkSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Serves one request end to end: a batch of one. A single request
    /// can still hit the response cache; coalescing needs batch-mates.
    pub fn call(&self, req: &Request) -> Result<Answer, Rejection> {
        self.call_batch(std::slice::from_ref(req))
            .pop()
            .expect("one request, one terminal outcome")
    }

    /// Serves a batch end to end: deterministic admission +
    /// classification under the control mutex, one worker dispatch per
    /// *distinct* lookup (sorted by packed key so the frozen vote groups
    /// are scanned as sequential runs), then deterministic settlement
    /// that fans each lead's answer out to its coalesced batch-mates.
    /// Outcomes come back in input order, one per request. Callers must
    /// present one market's requests in non-decreasing `submitted_us`
    /// order; batches longer than `config.max_batch` are split.
    pub fn call_batch(&self, reqs: &[Request]) -> Vec<Result<Answer, Rejection>> {
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(self.config.max_batch.max(1)) {
            self.serve_chunk(chunk, &mut out);
        }
        out
    }

    fn serve_chunk(&self, reqs: &[Request], out: &mut Vec<Result<Answer, Rejection>>) {
        // Phase 1 (ctl lock): admission, fault draws, classification.
        // The snapshot and model Arcs and the epoch are read together
        // under the lock — refits swap them in one critical section — so
        // every probe in this batch resolves against one consistent
        // (snapshot, model, epoch) triple.
        let (snapshot, model, epoch, dispositions) = {
            let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
            let snapshot = Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"));
            let model = Arc::clone(&self.model.read().expect("model lock poisoned"));
            let epoch = ctl.model_epoch;
            let mut seen: HashMap<ProbeKey, usize> = HashMap::new();
            let dispositions: Vec<Disposition> = reqs
                .iter()
                .enumerate()
                .map(|(i, req)| {
                    self.admit_classify(&mut ctl, req, &snapshot, &model, epoch, &mut seen, i)
                })
                .collect();
            let n_admitted = dispositions
                .iter()
                .filter(|d| !matches!(d, Disposition::Reject(_)))
                .count() as u64;
            let n_leads = dispositions
                .iter()
                .filter(|d| matches!(d, Disposition::Lead { .. }))
                .count() as u64;
            if n_admitted > 0 {
                self.obs.observe("serve.batch.size", n_admitted);
                self.obs.observe("serve.batch.groups", n_leads);
            }
            (snapshot, model, epoch, dispositions)
        };

        // Phase 2 (no locks): dispatch the leads, sorted by probe key so
        // equal-prefix packed keys land on the worker back to back, and
        // collect their replies. Each lead gets its own reply channel;
        // the single worker executes in dispatch order.
        let mut lead_order: Vec<usize> = dispositions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| matches!(d, Disposition::Lead { .. }).then_some(i))
            .collect();
        lead_order.sort_by(|&a, &b| {
            let key_of = |i: usize| match &dispositions[i] {
                Disposition::Lead { key, .. } => key.as_ref(),
                _ => unreachable!("lead_order holds leads only"),
            };
            match (key_of(a), key_of(b)) {
                (Some(ka), Some(kb)) => ka.cmp(kb).then(a.cmp(&b)),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.cmp(&b),
            }
        });
        let mut replies: Vec<Option<WorkerReply>> = reqs.iter().map(|_| None).collect();
        let rxs: Vec<(usize, mpsc::Receiver<WorkerReply>)> = lead_order
            .iter()
            .map(|&i| {
                let Disposition::Lead { admission, .. } = &dispositions[i] else {
                    unreachable!("lead_order holds leads only");
                };
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                self.tx
                    .as_ref()
                    .expect("shard already shut down")
                    .send(Job {
                        kind: reqs[i].kind.clone(),
                        mode: admission.mode,
                        snapshot: Arc::clone(&snapshot),
                        model: Arc::clone(&model),
                        reply: reply_tx,
                    })
                    .expect("shard worker gone");
                (i, reply_rx)
            })
            .collect();
        for (i, rx) in rxs {
            replies[i] = Some(rx.recv().expect("shard worker dropped the reply"));
        }

        // Phase 3 (ctl lock): settle in input order, fan out, cache.
        let n_admitted = dispositions
            .iter()
            .filter(|d| !matches!(d, Disposition::Reject(_)))
            .count();
        let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
        for (i, req) in reqs.iter().enumerate() {
            let outcome = match &dispositions[i] {
                Disposition::Reject(r) => Err(*r),
                Disposition::CacheHit {
                    done_us,
                    state,
                    body,
                } => {
                    let (degraded, reason) = degrade_from_body(&req.kind, body);
                    self.count_answer(&mut ctl, degraded);
                    // A cache hit is a primary-path success: the cached
                    // body was computed by a successful primary serve of
                    // this same probe under this same epoch.
                    let was_half_open = ctl.breaker.state() == BreakerState::HalfOpen;
                    ctl.breaker.on_success();
                    if was_half_open {
                        self.obs.inc("serve.breaker.closed");
                    }
                    Ok(self.answer(req, *done_us, *state, degraded, reason, body.clone()))
                }
                Disposition::Member {
                    lead,
                    done_us,
                    state,
                } => {
                    let r = replies[*lead].as_ref().expect("lead executed");
                    // The lead owns the breaker feedback and any
                    // contained-panic accounting; members only share the
                    // answer (degraded status included).
                    self.count_answer(&mut ctl, r.degraded);
                    Ok(self.answer(req, *done_us, *state, r.degraded, r.reason, r.body.clone()))
                }
                Disposition::Lead { admission, key } => {
                    // `as_ref`, not `take`: members settle after their
                    // lead (input order) and still need the reply.
                    let r = replies[i].as_ref().expect("lead executed");
                    self.settle(&mut ctl, req, admission, r);
                    // Cache only clean primary bodies, and only if the
                    // epoch this batch resolved under is still current —
                    // a refit mid-batch cleared the cache and bumped the
                    // epoch, and a stale insert would just waste a slot
                    // (epoch validation would refuse to serve it).
                    if let Some(key) = key {
                        if !r.panicked && ctl.model_epoch == epoch {
                            let evicted = ctl.cache.insert(key.clone(), epoch, r.body.clone());
                            self.obs.inc("serve.cache.insert");
                            if evicted {
                                self.obs.inc("serve.cache.evict");
                            }
                        }
                    }
                    Ok(self.answer(
                        req,
                        admission.done_us,
                        admission.state,
                        r.degraded,
                        r.reason,
                        r.body.clone(),
                    ))
                }
            };
            if let Ok(a) = &outcome {
                self.observe_latency(a.state, a.latency_us, n_admitted);
            }
            out.push(outcome);
        }
    }

    /// Deterministic admission + classification for one batched request
    /// at `req.submitted_us`. Rejections are counted here; admitted
    /// requests draw their faults (admission order = stream order,
    /// batched or not), get classified as cache hit / coalesced member /
    /// lead, and book their class's virtual cost.
    #[allow(clippy::too_many_arguments)]
    fn admit_classify(
        &self,
        ctl: &mut ShardCtl,
        req: &Request,
        snapshot: &NetworkSnapshot,
        model: &CfModel,
        epoch: u64,
        seen: &mut HashMap<ProbeKey, usize>,
        idx: usize,
    ) -> Disposition {
        let now = req.submitted_us;
        self.advance_state(ctl, now);

        match ctl.state {
            ShardState::Draining => {
                ctl.rejected.draining += 1;
                self.obs.inc("serve.rejected.draining");
                return Disposition::Reject(Rejection::Draining);
            }
            ShardState::Ready => {
                let was = ctl.breaker.state();
                if !ctl.breaker.admit(now) {
                    ctl.rejected.breaker_open += 1;
                    self.obs.inc("serve.rejected.breaker_open");
                    return Disposition::Reject(Rejection::BreakerOpen);
                }
                if was != ctl.breaker.state() {
                    self.obs.inc("serve.breaker.half_open");
                }
            }
            ShardState::Warming | ShardState::Degraded => {}
        }

        // Shed already-expired requests before anything else touches
        // them: no queue slot, no fault draw, no cache probe.
        if now > req.deadline_us {
            ctl.rejected.deadline_expired += 1;
            self.obs.inc("serve.shed.deadline");
            return Disposition::Reject(Rejection::DeadlineExpired);
        }
        // Virtual queue: retire completions, then check capacity.
        while ctl.inflight.front().is_some_and(|&done| done <= now) {
            ctl.inflight.pop_front();
        }
        if ctl.inflight.len() >= self.config.queue_capacity {
            ctl.rejected.overloaded += 1;
            self.obs.inc("serve.shed.overload");
            return Disposition::Reject(Rejection::Overloaded);
        }
        // Proactive shedding: a request that cannot *start* before its
        // deadline is dead on arrival too (whatever its class would
        // have been — classification must not resurrect it, or A/B
        // runs would shed different request sets).
        let start_us = ctl.virtual_done_us.max(now);
        if start_us > req.deadline_us {
            ctl.rejected.deadline_expired += 1;
            self.obs.inc("serve.shed.deadline");
            return Disposition::Reject(Rejection::DeadlineExpired);
        }

        // Admitted: draw request-path faults. Every admitted request
        // draws, whatever its class, so the fault stream — and with it
        // the whole chaos schedule — is identical across batched,
        // unbatched, cached, and uncached runs of the same plan.
        let faults = draw_request_faults(&mut ctl.request_rng, &self.plan.rates);
        if faults.latency_spike {
            ctl.faults.latency_spikes += 1;
            self.obs.inc("serve.fault.latency_spike");
        }
        let state = ctl.state;

        // Classification. Only Ready-state primary service without an
        // injected or poisoned panic is eligible for the cache and for
        // coalescing: a drawn panic must really fire (fault parity),
        // and market-mode answers are degraded state, not lookups.
        enum Class {
            Hit(Body),
            Member(usize),
            Lead {
                mode: ServeMode,
                key: Option<ProbeKey>,
            },
        }
        let class = match state {
            ShardState::Warming => Class::Lead {
                mode: ServeMode::MarketMode(DegradeReason::Warming),
                key: None,
            },
            ShardState::Degraded => Class::Lead {
                mode: ServeMode::MarketMode(DegradeReason::ShardDegraded),
                key: None,
            },
            ShardState::Ready => {
                let inject = faults.worker_panic;
                if inject {
                    ctl.faults.worker_panics += 1;
                    self.obs.inc("serve.fault.worker_panic");
                }
                if inject || ctl.poisoned {
                    Class::Lead {
                        mode: ServeMode::Primary {
                            inject_panic: inject,
                            poisoned: ctl.poisoned,
                        },
                        key: None,
                    }
                } else {
                    let mode = ServeMode::Primary {
                        inject_panic: false,
                        poisoned: false,
                    };
                    match probe::resolve(model, snapshot, &req.kind) {
                        None => {
                            self.obs.inc("serve.cache.unresolved");
                            Class::Lead { mode, key: None }
                        }
                        Some(key) => {
                            let looked_up = ctl.cache.get(&key, epoch);
                            if matches!(looked_up, CacheLookup::Stale) {
                                self.obs.inc("serve.cache.invalidated");
                            }
                            match looked_up {
                                CacheLookup::Hit(body) => {
                                    ctl.cache_hits += 1;
                                    self.obs.inc("serve.cache.hit");
                                    Class::Hit(body)
                                }
                                CacheLookup::Miss | CacheLookup::Stale => {
                                    self.obs.inc("serve.cache.miss");
                                    if let Some(&lead) = seen.get(&key) {
                                        ctl.coalesced += 1;
                                        self.obs.inc("serve.batch.coalesced");
                                        Class::Member(lead)
                                    } else {
                                        seen.insert(key.clone(), idx);
                                        Class::Lead {
                                            mode,
                                            key: Some(key),
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            ShardState::Draining => unreachable!("rejected above"),
        };

        // Price the request by class and book the virtual completion.
        let base = match &class {
            Class::Hit(_) => self.config.costs.cache_hit_us,
            Class::Member(_) => self.config.costs.coalesced_us,
            Class::Lead { .. } => self.config.costs.base(&req.kind),
        };
        let cost = if faults.latency_spike {
            base.saturating_mul(self.config.costs.spike_factor)
        } else {
            base
        };
        let done_us = start_us + cost;
        ctl.virtual_done_us = done_us;
        ctl.inflight.push_back(done_us);
        ctl.busy_us += cost;
        ctl.admitted += 1;
        self.obs.inc("serve.admitted");

        match class {
            Class::Hit(body) => Disposition::CacheHit {
                done_us,
                state,
                body,
            },
            Class::Member(lead) => Disposition::Member {
                lead,
                done_us,
                state,
            },
            Class::Lead { mode, key } => Disposition::Lead {
                admission: Admission {
                    done_us,
                    mode,
                    state,
                },
                key,
            },
        }
    }

    /// Counts one answered request (first-class or degraded).
    fn count_answer(&self, ctl: &mut ShardCtl, degraded: bool) {
        if degraded {
            ctl.degraded_answers += 1;
            self.obs.inc("serve.answered.degraded");
        } else {
            ctl.answered += 1;
            self.obs.inc("serve.answered.ok");
        }
    }

    fn answer(
        &self,
        req: &Request,
        done_us: u64,
        state: ShardState,
        degraded: bool,
        reason: Option<DegradeReason>,
        body: Body,
    ) -> Answer {
        Answer {
            id: req.id,
            degraded,
            reason,
            state,
            latency_us: done_us - req.submitted_us,
            body,
        }
    }

    /// Per-state and per-batch-size latency histograms.
    fn observe_latency(&self, state: ShardState, latency_us: u64, batch_size: usize) {
        self.obs.observe(
            match state {
                ShardState::Warming => "serve.latency_us.warming",
                ShardState::Ready => "serve.latency_us.ready",
                ShardState::Degraded => "serve.latency_us.degraded",
                ShardState::Draining => unreachable!("draining admits nothing"),
            },
            latency_us,
        );
        self.obs.observe(
            match batch_size {
                0 | 1 => "serve.batch.latency_us.b1",
                2..=4 => "serve.batch.latency_us.b2_4",
                5..=8 => "serve.batch.latency_us.b5_8",
                _ => "serve.batch.latency_us.b9plus",
            },
            latency_us,
        );
    }

    /// Time-driven state transitions at `now`: scheduled restart, warmup
    /// completion.
    fn advance_state(&self, ctl: &mut ShardCtl, now: u64) {
        if ctl.state == ShardState::Degraded && ctl.restart_at_us.is_some_and(|at| now >= at) {
            ctl.state = ShardState::Warming;
            ctl.warm_until_us = now + self.config.warmup_us;
            ctl.restart_at_us = None;
            ctl.poisoned = false;
            ctl.panics_since_restart = 0;
            ctl.breaker.reset();
            ctl.restarts += 1;
            self.obs.inc("serve.shard.restarted");
        }
        if ctl.state == ShardState::Warming && now >= ctl.warm_until_us {
            ctl.state = ShardState::Ready;
            self.obs.inc("serve.shard.ready");
        }
    }

    /// Post-completion accounting: panic containment, breaker feedback,
    /// the Degraded trip.
    fn settle(&self, ctl: &mut ShardCtl, req: &Request, admission: &Admission, r: &WorkerReply) {
        if r.degraded {
            ctl.degraded_answers += 1;
            self.obs.inc("serve.answered.degraded");
        } else {
            ctl.answered += 1;
            self.obs.inc("serve.answered.ok");
        }
        if r.panicked {
            ctl.panics_contained += 1;
            self.obs.inc("serve.panics.contained");
        }
        // Breaker + degradation feedback applies to full-service
        // requests only; market-mode service has no primary path.
        if let ServeMode::Primary { .. } = admission.mode {
            let now = req.submitted_us;
            if r.panicked {
                let was_half_open = ctl.breaker.state() == BreakerState::HalfOpen;
                if ctl.breaker.on_failure(now) {
                    self.obs.inc("serve.breaker.opened");
                    if was_half_open {
                        self.obs.inc("serve.breaker.reopened");
                    }
                }
                ctl.panics_since_restart += 1;
                if ctl.state == ShardState::Ready
                    && ctl.panics_since_restart >= self.config.panic_threshold
                {
                    ctl.state = ShardState::Degraded;
                    ctl.restart_at_us = Some(now + self.config.restart_delay_us);
                    self.obs.inc("serve.shard.degraded");
                }
            } else {
                let was_half_open = ctl.breaker.state() == BreakerState::HalfOpen;
                ctl.breaker.on_success();
                if was_half_open {
                    self.obs.inc("serve.breaker.closed");
                }
            }
        }
    }

    /// Hot refit: swaps the model `Arc` on success. An injected refit
    /// failure (or a poisoned swap) follows the shard's seeded refit
    /// fault stream; either way the shard keeps answering — stale model
    /// beats no model.
    pub fn refit(&self, model: CfModel, _now_us: u64) -> Result<(), RefitError> {
        let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
        let faults = draw_refit_faults(&mut ctl.refit_rng, &self.plan.rates);
        if faults.refit_failure {
            ctl.refits_failed += 1;
            ctl.faults.refit_failures += 1;
            self.obs.inc("serve.refit.failed");
            return Err(RefitError::Injected);
        }
        *self.model.write().expect("model lock poisoned") = Arc::new(model);
        ctl.model_epoch += 1;
        // Same critical section as the swap + epoch bump: no lookup can
        // see the new model with the old epoch's cache entries.
        let dropped = ctl.cache.clear();
        if dropped > 0 {
            self.obs.add("serve.cache.invalidated", dropped as u64);
        }
        ctl.refits_ok += 1;
        self.obs.inc("serve.refit.ok");
        if faults.poisoned {
            ctl.poisoned = true;
            ctl.faults.poisoned_models += 1;
            self.obs.inc("serve.fault.poisoned_model");
        }
        Ok(())
    }

    /// Incremental hot refit for streaming ingestion: clones the current
    /// model, rolls it forward over one applied delta batch
    /// ([`CfModel::apply_delta`] — byte-identical to a full refit of the
    /// post-batch fleet), and swaps the `(snapshot, model)` pair through
    /// the same fault-checked path as [`Shard::refit`]: same seeded fault
    /// draw, same epoch bump, same cache clear, all in one critical
    /// section. The expensive work happens before any lock is taken, so
    /// admission keeps serving the old pair meanwhile.
    ///
    /// On an injected refit failure the shard keeps its old — mutually
    /// consistent — `(snapshot, model)` pair and keeps answering: a
    /// stale fleet beats a torn one. The caller may retry with the same
    /// arguments once its next batch arrives.
    pub fn refit_delta(
        &self,
        snapshot: Arc<NetworkSnapshot>,
        arena: &AttrArena,
        batch: &AppliedBatch,
        key_cache: Option<SharedKeyColumns>,
        _now_us: u64,
    ) -> Result<DeltaFitReport, RefitError> {
        let scope_before = Scope::market(&self.snapshot(), self.market);
        let scope_after = Scope::market(&snapshot, self.market);
        let mut model = (*self.model()).clone();
        let report = model.apply_delta(&DeltaApply {
            snapshot: &snapshot,
            arena,
            scope_before: &scope_before,
            scope_after: &scope_after,
            batch,
            key_cache,
        });
        let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
        let faults = draw_refit_faults(&mut ctl.refit_rng, &self.plan.rates);
        if faults.refit_failure {
            ctl.refits_failed += 1;
            ctl.faults.refit_failures += 1;
            self.obs.inc("serve.refit.failed");
            return Err(RefitError::Injected);
        }
        // Snapshot and model swap in the same critical section as the
        // epoch bump + cache clear: no batch can resolve probes against
        // the new model over the old fleet (or vice versa), and no
        // pre-swap cache entry survives into the new epoch.
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
        *self.model.write().expect("model lock poisoned") = Arc::new(model);
        ctl.model_epoch += 1;
        let dropped = ctl.cache.clear();
        if dropped > 0 {
            self.obs.add("serve.cache.invalidated", dropped as u64);
        }
        ctl.refits_ok += 1;
        self.obs.inc("serve.refit.ok");
        if faults.poisoned {
            ctl.poisoned = true;
            ctl.faults.poisoned_models += 1;
            self.obs.inc("serve.fault.poisoned_model");
        }
        Ok(report)
    }

    /// Refit from serialized bytes: a corrupt model file is a typed
    /// error and the stale model keeps serving. Only a successfully
    /// parsed model consumes a refit fault draw, so a deterministic
    /// byte stream keeps the fault stream deterministic.
    pub fn install_model_json(&self, bytes: &[u8], now_us: u64) -> Result<(), RefitError> {
        let model = CfModel::from_json_bytes(bytes).map_err(|e| {
            self.obs.inc("serve.refit.rejected_bytes");
            let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
            ctl.refits_failed += 1;
            RefitError::Load(e)
        })?;
        self.refit(model, now_us)
    }

    /// Enters Draining: all new requests get a typed rejection.
    pub fn drain(&self) {
        let mut ctl = self.ctl.lock().expect("shard ctl poisoned");
        if ctl.state != ShardState::Draining {
            ctl.state = ShardState::Draining;
            self.obs.inc("serve.shard.draining");
        }
    }

    /// Deterministic stats snapshot (safe between requests).
    pub fn stats(&self) -> ShardStats {
        let ctl = self.ctl.lock().expect("shard ctl poisoned");
        ShardStats {
            market: self.market.0,
            state: ctl.state,
            admitted: ctl.admitted,
            answered: ctl.answered,
            degraded_answers: ctl.degraded_answers,
            rejected: ctl.rejected,
            panics_contained: ctl.panics_contained,
            faults: ctl.faults,
            breaker: ctl.breaker.stats(),
            refits_ok: ctl.refits_ok,
            refits_failed: ctl.refits_failed,
            model_epoch: ctl.model_epoch,
            dispatched: self.dispatched.load(Ordering::SeqCst),
            cache_hits: ctl.cache_hits,
            coalesced: ctl.coalesced,
            busy_us: ctl.busy_us,
            restarts: ctl.restarts,
        }
    }

    /// Stops the worker thread (drops the channel, joins).
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker thread: really executes every dispatched lead against the
/// `(snapshot, model)` pair its batch was admitted under (epoch-pinned —
/// a refit mid-batch does not change what this batch answers with), one
/// `catch_unwind` per job. The KPI report stays pinned to the
/// construction-time fleet: re-simulating KPIs per ingested batch is the
/// KPI pipeline's job, not the serving path's.
fn worker_loop(rx: mpsc::Receiver<Job>, kpi: Arc<Option<KpiReport>>, dispatched: Arc<AtomicU64>) {
    while let Ok(job) = rx.recv() {
        dispatched.fetch_add(1, Ordering::SeqCst);
        let reply = serve_job(&job.snapshot, &job.model, kpi.as_ref().as_ref(), &job);
        // A dropped receiver means the front door gave up; nothing to do.
        let _ = job.reply.send(reply);
    }
}

/// Degradation status a cached body implies: a `KpiHealth(None)` hit is
/// still a degraded answer (the report does not cover the carrier),
/// exactly as its original primary serve was.
fn degrade_from_body(kind: &RequestKind, body: &Body) -> (bool, Option<DegradeReason>) {
    let kpi_missing =
        matches!(kind, RequestKind::Kpi { .. }) && matches!(body, Body::KpiHealth(None));
    (
        kpi_missing,
        kpi_missing.then_some(DegradeReason::KpiUnavailable),
    )
}

/// Serves one job through the fallback chain. Every stage runs under
/// `catch_unwind`; a stage that panics falls through to the next, and
/// the final market-mode stage is panic-free by construction (and still
/// guarded — an empty answer beats a lost one).
fn serve_job(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    kpi: Option<&KpiReport>,
    job: &Job,
) -> WorkerReply {
    let (inject, poisoned, market_only_reason) = match job.mode {
        ServeMode::Primary {
            inject_panic,
            poisoned,
        } => (inject_panic, poisoned, None),
        ServeMode::MarketMode(reason) => (false, false, Some(reason)),
    };
    if let Some(reason) = market_only_reason {
        let body = catch_unwind(AssertUnwindSafe(|| {
            market_mode_body(snapshot, model, kpi, &job.kind)
        }))
        .unwrap_or_else(|_| empty_body(&job.kind));
        return WorkerReply {
            body,
            degraded: true,
            reason: Some(reason),
            panicked: false,
        };
    }

    // Primary path. Injected panics (one-shot or poisoned-model) fire
    // inside the unwind boundary, exactly where a genuine model panic
    // would.
    let primary = catch_unwind(AssertUnwindSafe(|| {
        if inject || poisoned {
            std::panic::panic_any(InjectedPanic);
        }
        primary_body(snapshot, model, kpi, &job.kind)
    }));
    if let Ok(body) = primary {
        let kpi_missing = matches!(body, Body::KpiHealth(None));
        return WorkerReply {
            body,
            degraded: kpi_missing,
            reason: kpi_missing.then_some(DegradeReason::KpiUnavailable),
            panicked: false,
        };
    }

    // Fallback chain: pairwise → singular → market mode.
    let secondary = match &job.kind {
        RequestKind::Pairwise { new_carrier, .. } => catch_unwind(AssertUnwindSafe(|| {
            Body::Recommendations(recommend_singular(snapshot, model, new_carrier))
        }))
        .ok(),
        _ => None,
    };
    let body = secondary.unwrap_or_else(|| {
        catch_unwind(AssertUnwindSafe(|| {
            market_mode_body(snapshot, model, kpi, &job.kind)
        }))
        .unwrap_or_else(|_| empty_body(&job.kind))
    });
    WorkerReply {
        body,
        degraded: true,
        reason: Some(DegradeReason::PanicFallback),
        panicked: true,
    }
}

/// Full-service answer for one request kind.
fn primary_body(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    kpi: Option<&KpiReport>,
    kind: &RequestKind,
) -> Body {
    match kind {
        RequestKind::ColdStart(nc) => {
            Body::Recommendations(recommend_singular(snapshot, model, nc))
        }
        RequestKind::Pairwise {
            new_carrier,
            neighbor,
        } => Body::Recommendations(recommend_pairwise(snapshot, model, new_carrier, *neighbor)),
        RequestKind::Singular { carrier } => {
            let mut recs = Vec::new();
            for def in snapshot.catalog.defs() {
                if def.kind != ParamKind::Singular {
                    continue;
                }
                let r = model.recommend_local_singular(snapshot, def.id, *carrier, false);
                recs.push(ConfigRecommendation {
                    param: def.id,
                    name: def.name.clone(),
                    value: r.value,
                    concrete: def.range.value(r.value),
                    basis: r.basis,
                    support: r.support,
                    voters: r.voters,
                    matched_on: Vec::new(),
                });
            }
            Body::Recommendations(recs)
        }
        RequestKind::Kpi { carrier } => {
            Body::KpiHealth(kpi.and_then(|rep| rep.kpi(*carrier)).map(|k| k.health()))
        }
    }
}

/// The degraded last-resort answer: per-parameter market mode (scope
/// plurality, else catalog default) — no probe keys, no neighborhood
/// scans, nothing that can panic.
fn market_mode_body(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    kpi: Option<&KpiReport>,
    kind: &RequestKind,
) -> Body {
    let wanted = match kind {
        RequestKind::ColdStart(_) | RequestKind::Singular { .. } => ParamKind::Singular,
        RequestKind::Pairwise { .. } => ParamKind::Pairwise,
        RequestKind::Kpi { carrier } => {
            // KPI queries degrade to the same cached lookup; the cache
            // never panics.
            return Body::KpiHealth(kpi.and_then(|rep| rep.kpi(*carrier)).map(|k| k.health()));
        }
    };
    let n_fitted = model.params().len();
    let mut recs = Vec::new();
    for def in snapshot.catalog.defs() {
        if def.kind != wanted || def.id.index() >= n_fitted {
            continue;
        }
        let r = model.market_mode(def.id);
        recs.push(ConfigRecommendation {
            param: def.id,
            name: def.name.clone(),
            value: r.value,
            concrete: def.range.value(r.value),
            basis: r.basis,
            support: r.support,
            voters: r.voters,
            matched_on: Vec::new(),
        });
    }
    Body::Recommendations(recs)
}

/// The absolute floor: an explicitly empty answer (only reachable if
/// even market mode panicked, which would itself be a bug — but a lost
/// reply would violate exactly-once terminal outcomes).
fn empty_body(kind: &RequestKind) -> Body {
    match kind {
        RequestKind::Kpi { .. } => Body::KpiHealth(None),
        _ => Body::Recommendations(Vec::new()),
    }
}
