//! The front door: routes requests to per-market shards, turns every
//! submission into exactly one typed terminal outcome (an [`Answer`] or
//! a [`Rejection`]), and aggregates shard stats for the chaos report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use auric_core::CfModel;
use auric_kpi::report::KpiReport;
use auric_kpi::traffic::TrafficModel;
use auric_model::{MarketId, NetworkSnapshot};
use auric_obs::Recorder;
use serde::{Deserialize, Serialize};

use crate::api::{Answer, Rejection, Request};
use crate::fault::ShardFaultPlan;
use crate::shard::{RefitError, Shard, ShardConfig, ShardStats};

/// Service-wide configuration: one [`ShardConfig`] applied to every
/// shard (per-shard fault seeds are derived from the plan seed).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceConfig {
    pub shard: ShardConfig,
}

/// Deterministic service-level accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests addressed to markets with no shard.
    pub unknown_market: u64,
    /// Per-shard stats, sorted by market id.
    pub shards: Vec<ShardStats>,
}

/// The sharded recommendation service. One shard (model + worker
/// thread + admission state) per market; requests route by market id.
pub struct Service {
    shards: Vec<Shard>,
    /// `market id → index into shards`, dense.
    route: Vec<Option<usize>>,
    unknown_market: AtomicU64,
    obs: Recorder,
}

impl Service {
    /// Builds one shard per `(market, model)` pair. The KPI report is
    /// simulated once here and shared read-only by every shard; a
    /// snapshot whose traffic model cannot resolve simply serves
    /// `KpiHealth(None)` (degraded), it does not fail construction.
    pub fn new(
        snapshot: Arc<NetworkSnapshot>,
        models: Vec<(MarketId, CfModel)>,
        plan: ShardFaultPlan,
        config: ServiceConfig,
        obs: Recorder,
    ) -> Self {
        let kpi: Arc<Option<KpiReport>> =
            Arc::new(auric_kpi::simulate(&snapshot, &TrafficModel::default()).ok());
        let mut models = models;
        models.sort_by_key(|(m, _)| m.0);
        let mut shards = Vec::with_capacity(models.len());
        let max_id = models.iter().map(|(m, _)| m.0 as usize).max();
        let mut route = vec![None; max_id.map_or(0, |m| m + 1)];
        for (market, model) in models {
            assert!(
                route[market.0 as usize].is_none(),
                "duplicate shard for market {}",
                market.0
            );
            route[market.0 as usize] = Some(shards.len());
            shards.push(Shard::new(
                market,
                Arc::clone(&snapshot),
                model,
                Arc::clone(&kpi),
                plan,
                config.shard,
                obs.clone(),
            ));
        }
        Self {
            shards,
            route,
            unknown_market: AtomicU64::new(0),
            obs,
        }
    }

    fn shard(&self, market: MarketId) -> Option<&Shard> {
        self.route
            .get(market.0 as usize)
            .copied()
            .flatten()
            .map(|i| &self.shards[i])
    }

    /// Markets this service has shards for, sorted.
    pub fn markets(&self) -> Vec<MarketId> {
        self.shards.iter().map(|s| s.market()).collect()
    }

    /// Serves one request: route, admit, execute, answer. Exactly one
    /// terminal outcome per call — a possibly-degraded [`Answer`] or a
    /// typed [`Rejection`]. Per market, callers must present requests in
    /// non-decreasing `submitted_us` order.
    pub fn call(&self, req: &Request) -> Result<Answer, Rejection> {
        match self.shard(req.market) {
            Some(shard) => shard.call(req),
            None => {
                self.unknown_market.fetch_add(1, Ordering::SeqCst);
                self.obs.inc("serve.rejected.unknown_market");
                Err(Rejection::UnknownMarket)
            }
        }
    }

    /// Serves a batch of requests, one typed terminal outcome each, in
    /// input order. Consecutive same-market runs go to their shard as
    /// one coalescing batch (the shard splits at `max_batch`); per
    /// market the batch must be in non-decreasing `submitted_us` order.
    pub fn call_batch(&self, reqs: &[Request]) -> Vec<Result<Answer, Rejection>> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut i = 0;
        while i < reqs.len() {
            let market = reqs[i].market;
            let mut j = i + 1;
            while j < reqs.len() && reqs[j].market == market {
                j += 1;
            }
            match self.shard(market) {
                Some(shard) => out.extend(shard.call_batch(&reqs[i..j])),
                None => {
                    for _ in i..j {
                        self.unknown_market.fetch_add(1, Ordering::SeqCst);
                        self.obs.inc("serve.rejected.unknown_market");
                        out.push(Err(Rejection::UnknownMarket));
                    }
                }
            }
            i = j;
        }
        out
    }

    /// Hot-refits one market's model (subject to the shard's seeded
    /// refit fault stream). The old model keeps serving on failure.
    pub fn refit(&self, market: MarketId, model: CfModel, now_us: u64) -> Result<(), RefitError> {
        self.shard(market)
            .ok_or(RefitError::UnknownMarket)?
            .refit(model, now_us)
    }

    /// Streaming ingestion: rolls **every** shard forward over one
    /// applied delta batch against the post-batch snapshot, swapping
    /// each shard's `(snapshot, model)` pair under its epoch/cache
    /// invariants. Shards share one key-column cache for the batch, so
    /// fleet-wide spliced columns are built once, not per market. Each
    /// shard's seeded refit fault stream still applies — a shard that
    /// draws a failure keeps its old pair and reports the error in its
    /// result slot.
    pub fn refit_delta(
        &self,
        snapshot: &Arc<NetworkSnapshot>,
        arena: &auric_model::AttrArena,
        batch: &auric_model::AppliedBatch,
        now_us: u64,
    ) -> Vec<(MarketId, Result<auric_core::DeltaFitReport, RefitError>)> {
        let cache = auric_core::SharedKeyColumns::new();
        self.shards
            .iter()
            .map(|s| {
                (
                    s.market(),
                    s.refit_delta(
                        Arc::clone(snapshot),
                        arena,
                        batch,
                        Some(cache.clone()),
                        now_us,
                    ),
                )
            })
            .collect()
    }

    /// Refits one market from serialized model bytes; corrupt bytes are
    /// a typed error and the stale model keeps serving.
    pub fn install_model_json(
        &self,
        market: MarketId,
        bytes: &[u8],
        now_us: u64,
    ) -> Result<(), RefitError> {
        self.shard(market)
            .ok_or(RefitError::UnknownMarket)?
            .install_model_json(bytes, now_us)
    }

    /// Puts one market's shard into Draining; returns `false` for an
    /// unknown market.
    pub fn drain(&self, market: MarketId) -> bool {
        match self.shard(market) {
            Some(s) => {
                s.drain();
                true
            }
            None => false,
        }
    }

    /// The current model `Arc` of one market's shard (test/ops hook).
    pub fn model(&self, market: MarketId) -> Option<Arc<CfModel>> {
        self.shard(market).map(|s| s.model())
    }

    /// Deterministic stats snapshot, shards sorted by market id.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            unknown_market: self.unknown_market.load(Ordering::SeqCst),
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }

    /// Checks the chaos invariants against `submitted` (ids presented
    /// per market, whether admitted or not). Returns human-readable
    /// violations; empty means the serving layer held its contract:
    /// every admitted request did exactly one unit of shard work, shed
    /// and rejected requests did none, and every submission reached
    /// exactly one terminal outcome.
    pub fn invariant_violations(&self, submitted_per_market: &[(MarketId, u64)]) -> Vec<String> {
        let stats = self.stats();
        let mut violations = Vec::new();
        for shard in &stats.shards {
            if shard.dispatched + shard.cache_hits + shard.coalesced != shard.admitted {
                violations.push(format!(
                    "market {}: {} executed + {} cache hits + {} coalesced != {} admitted \
                     (every admitted request is served exactly once — by the worker, \
                     the cache, or a coalesced batch-mate; shed/rejected do no work)",
                    shard.market,
                    shard.dispatched,
                    shard.cache_hits,
                    shard.coalesced,
                    shard.admitted
                ));
            }
            if shard.answered + shard.degraded_answers != shard.admitted {
                violations.push(format!(
                    "market {}: {} ok + {} degraded answers != {} admitted \
                     (every admitted request needs exactly one answer)",
                    shard.market, shard.answered, shard.degraded_answers, shard.admitted
                ));
            }
            if let Some(&(_, submitted)) = submitted_per_market
                .iter()
                .find(|(m, _)| m.0 == shard.market)
            {
                let accounted = shard.admitted + shard.rejected.total();
                if accounted != submitted {
                    violations.push(format!(
                        "market {}: {} admitted + {} rejected != {} submitted \
                         (every submission needs exactly one terminal outcome)",
                        shard.market,
                        shard.admitted,
                        shard.rejected.total(),
                        submitted
                    ));
                }
            }
        }
        violations
    }

    /// Joins every shard's worker thread.
    pub fn shutdown(mut self) {
        for shard in &mut self.shards {
            shard.shutdown();
        }
    }
}
