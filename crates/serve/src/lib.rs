//! `auric-serve` — fault-tolerant serving layer for Auric
//! recommendations (§7 "deployment" concerns the paper leaves to ops).
//!
//! A sharded front door routes recommendation traffic to per-market CF
//! model shards and guarantees **exactly one typed terminal outcome per
//! request** under chaos:
//!
//! - **Deadlines** — requests carry absolute simulated-µs deadlines; a
//!   request that cannot start in time is shed *before any shard work*.
//! - **Load shedding** — bounded per-shard virtual queues reject with a
//!   typed `Overloaded` instead of queueing unboundedly.
//! - **Panic containment** — every worker call runs under
//!   `catch_unwind`; a panic degrades the answer (fallback chain
//!   pairwise → singular → market mode), never loses it. Repeated
//!   panics trip the shard to Degraded and schedule a restart.
//! - **Circuit breaking** — consecutive primary-path failures open a
//!   seeded breaker that half-opens on a simulated-time cooldown with
//!   deterministic jitter.
//! - **Hot refit** — each shard's model is an `Arc` swapped under a
//!   lock; a refitting, degraded, or poisoned shard serves the stale
//!   model rather than erroring.
//! - **Batched hot path** — admission resolves each request once into a
//!   packed-key [`ProbeKey`]; a batch coalesces duplicate probes into
//!   one worker dispatch (leads sorted by packed key), and a bounded
//!   per-shard [`ResponseCache`] serves repeats, validated against a
//!   model epoch bumped on every refit swap so stale bodies never
//!   serve.
//!
//! Everything is driven by simulated time and seeded fault plans
//! ([`ShardFaultPlan`], mirroring `auric_ems::fault`), so the
//! `bench_serve` load generator produces byte-identical chaos reports
//! across same-seed runs. No async runtime: plain threads and channels.

pub mod api;
pub mod breaker;
pub mod cache;
pub mod fault;
pub mod probe;
pub mod service;
pub mod shard;

pub use api::{Answer, Body, DegradeReason, Rejection, Request, RequestKind, ShardState};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{CacheLookup, ResponseCache};
pub use fault::{ShardFaultCounts, ShardFaultPlan, ShardFaultRates};
pub use probe::ProbeKey;
pub use service::{Service, ServiceConfig, ServiceStats};
pub use shard::{RefitError, RejectionCounts, ServiceCosts, Shard, ShardConfig, ShardStats};
