//! A seeded circuit breaker on simulated time.
//!
//! Closed → (N consecutive primary-path failures) → Open →
//! (cooldown + seeded jitter elapses) → HalfOpen → one probe request →
//! Closed on success, Open again on failure.
//!
//! The jitter is drawn from a per-shard ChaCha stream, so a fleet of
//! shards tripped by the same fault storm does not half-open — and
//! re-hammer a struggling dependency — in lockstep, while the same seed
//! still reproduces the exact reopen schedule.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Breaker thresholds and timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive primary-path failures that open the breaker.
    pub trip_after: u32,
    /// Simulated µs the breaker stays open before half-opening.
    pub cooldown_us: u64,
    /// Upper bound of the seeded jitter added to each cooldown.
    pub jitter_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            cooldown_us: 50_000,
            jitter_us: 10_000,
        }
    }
}

/// Where the breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    Closed,
    /// Rejecting until the stored instant.
    Open {
        until_us: u64,
    },
    /// Admitting one probe request.
    HalfOpen,
}

/// Lifetime transition counters, for the chaos report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerStats {
    pub opened: u64,
    pub half_opened: u64,
    pub closed_from_half_open: u64,
    pub reopened_from_half_open: u64,
}

/// The breaker itself. Not thread-safe on its own — it lives inside the
/// shard's control mutex.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    rng: ChaCha8Rng,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker with a seeded jitter stream.
    pub fn new(config: BreakerConfig, seed: u64) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stats: BreakerStats::default(),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Admission check at `now_us`. An open breaker whose cooldown has
    /// elapsed half-opens and admits the caller as the probe.
    pub fn admit(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_us } => {
                if now_us >= until_us {
                    self.state = BreakerState::HalfOpen;
                    self.stats.half_opened += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A primary-path success: closes a half-open breaker, clears the
    /// failure run.
    pub fn on_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.stats.closed_from_half_open += 1;
        }
        self.consecutive_failures = 0;
    }

    /// A primary-path failure at `now_us`: reopens a half-open breaker
    /// immediately, opens a closed one after `trip_after` consecutive
    /// failures. Returns `true` when this call opened the breaker.
    pub fn on_failure(&mut self, now_us: u64) -> bool {
        self.consecutive_failures += 1;
        let reopen = self.state == BreakerState::HalfOpen;
        if reopen || self.consecutive_failures >= self.config.trip_after {
            let jitter = if self.config.jitter_us == 0 {
                0
            } else {
                self.rng.random_range(0..=self.config.jitter_us)
            };
            self.state = BreakerState::Open {
                until_us: now_us + self.config.cooldown_us + jitter,
            };
            self.consecutive_failures = 0;
            self.stats.opened += 1;
            if reopen {
                self.stats.reopened_from_half_open += 1;
            }
            true
        } else {
            false
        }
    }

    /// Resets to closed (shard restart).
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerConfig {
                trip_after: 3,
                cooldown_us: 1_000,
                jitter_us: 100,
            },
            42,
        )
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(10));
        b.on_success(); // run broken
        assert!(!b.on_failure(20));
        assert!(!b.on_failure(30));
        assert!(b.on_failure(40), "third consecutive failure trips");
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert!(!b.admit(41));
    }

    #[test]
    fn half_opens_after_cooldown_then_closes_on_probe_success() {
        let mut b = breaker();
        for t in [0, 1, 2] {
            b.on_failure(t);
        }
        let BreakerState::Open { until_us } = b.state() else {
            panic!("not open");
        };
        assert!((1_002..=1_102).contains(&until_us), "cooldown + jitter");
        assert!(!b.admit(until_us - 1));
        assert!(b.admit(until_us), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().closed_from_half_open, 1);
    }

    #[test]
    fn probe_failure_reopens_immediately() {
        let mut b = breaker();
        for t in [0, 1, 2] {
            b.on_failure(t);
        }
        let BreakerState::Open { until_us } = b.state() else {
            panic!("not open");
        };
        assert!(b.admit(until_us));
        assert!(b.on_failure(until_us), "single probe failure reopens");
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert_eq!(b.stats().reopened_from_half_open, 1);
        assert_eq!(b.stats().opened, 2);
    }

    #[test]
    fn same_seed_reproduces_the_reopen_schedule() {
        let run = || {
            let mut b = breaker();
            for t in [0, 1, 2] {
                b.on_failure(t);
            }
            let BreakerState::Open { until_us } = b.state() else {
                panic!("not open");
            };
            until_us
        };
        assert_eq!(run(), run());
    }
}
