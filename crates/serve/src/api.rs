//! The request/response surface of the serving layer.
//!
//! Time is simulated microseconds throughout: requests carry their
//! submission instant and an absolute deadline, and every latency the
//! service reports is virtual. That keeps load tests deterministic — the
//! same seed produces byte-identical reports — while the real worker
//! threads still execute every admitted request.

use auric_core::recommend::{ConfigRecommendation, NewCarrier};
use auric_model::{CarrierId, MarketId};
use serde::{Deserialize, Serialize};

/// One recommendation request addressed to a market shard.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the answer; the chaos invariant
    /// checker uses it to prove exactly-once terminal outcomes.
    pub id: u64,
    pub market: MarketId,
    /// Simulated submission instant (µs). Per market, callers must
    /// submit in non-decreasing `submitted_us` order — the shard's
    /// admission clock follows the request stream.
    pub submitted_us: u64,
    /// Absolute simulated deadline (µs). A request that cannot start
    /// before this instant is shed without doing any shard work.
    pub deadline_us: u64,
    pub kind: RequestKind,
}

/// What the request asks for.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Singular-parameter recommendations for a carrier not yet in the
    /// network (§4: attributes plus planned X2 neighbors).
    ColdStart(NewCarrier),
    /// Pairwise-parameter recommendations for a new carrier toward one
    /// planned neighbor.
    Pairwise {
        new_carrier: NewCarrier,
        neighbor: CarrierId,
    },
    /// Singular-parameter recommendations for an existing carrier
    /// (neighborhood vote first, global chain as fallback).
    Singular { carrier: CarrierId },
    /// Simulated-KPI health of an existing carrier, served from the
    /// shard's cached KPI report.
    Kpi { carrier: CarrierId },
}

impl RequestKind {
    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RequestKind::ColdStart(_) => "cold_start",
            RequestKind::Pairwise { .. } => "pairwise",
            RequestKind::Singular { .. } => "singular",
            RequestKind::Kpi { .. } => "kpi",
        }
    }
}

/// Why an admitted-path request was turned away. Every variant is a
/// *typed terminal outcome* — the caller always learns what happened,
/// and none of these performs any shard work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// The request named a market the service has no shard for.
    UnknownMarket,
    /// The shard is draining and accepts no new work.
    Draining,
    /// The shard's circuit breaker is open (recent consecutive
    /// failures); retry after the breaker half-opens.
    BreakerOpen,
    /// The shard's queue is at capacity; explicit backpressure.
    Overloaded,
    /// The request was already past its deadline, or could not have
    /// started before it; shed before any work.
    DeadlineExpired,
}

impl Rejection {
    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::UnknownMarket => "unknown_market",
            Rejection::Draining => "draining",
            Rejection::BreakerOpen => "breaker_open",
            Rejection::Overloaded => "overloaded",
            Rejection::DeadlineExpired => "deadline_expired",
        }
    }
}

/// The shard state machine. Transitions:
/// `Warming → Ready → Degraded → (restart) → Warming`, with `Draining`
/// terminal. Warming and Degraded shards still answer — degraded, from
/// the market-mode path — rather than erroring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardState {
    /// Recently (re)started; serves market-mode answers until warmup
    /// elapses.
    Warming,
    /// Full service over the current model.
    Ready,
    /// Too many panics or a poisoned refit; serves market-mode answers
    /// from the stale model until the scheduled restart.
    Degraded,
    /// Shutting down; new requests are rejected with
    /// [`Rejection::Draining`].
    Draining,
}

impl ShardState {
    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShardState::Warming => "warming",
            ShardState::Ready => "ready",
            ShardState::Degraded => "degraded",
            ShardState::Draining => "draining",
        }
    }
}

/// Why an answer is degraded rather than first-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The shard is warming up; market-mode answer.
    Warming,
    /// The shard is in the Degraded state; market-mode answer from the
    /// stale model.
    ShardDegraded,
    /// This request's primary path panicked; the fallback chain
    /// (pairwise → singular → market mode) produced the answer.
    PanicFallback,
    /// A KPI query for a carrier the cached report does not cover.
    KpiUnavailable,
}

impl DegradeReason {
    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeReason::Warming => "warming",
            DegradeReason::ShardDegraded => "shard_degraded",
            DegradeReason::PanicFallback => "panic_fallback",
            DegradeReason::KpiUnavailable => "kpi_unavailable",
        }
    }
}

/// The answer payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Per-parameter recommendations (cold-start, pairwise, singular).
    Recommendations(Vec<ConfigRecommendation>),
    /// Simulated KPI health in `[0, 1]`; `None` when the cached report
    /// does not cover the carrier (the answer is then degraded).
    KpiHealth(Option<f64>),
}

/// A served answer — possibly degraded, never silently wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// `true` when the fallback chain (not the primary path) answered.
    pub degraded: bool,
    /// Why, when `degraded`.
    pub reason: Option<DegradeReason>,
    /// Shard state that served the request.
    pub state: ShardState,
    /// Virtual completion minus submission (µs), queueing included.
    pub latency_us: u64,
    pub body: Body,
}
