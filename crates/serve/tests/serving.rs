//! Chaos-facing integration tests for the serving layer: the shard
//! state machine, deadline shedding, load shedding, breaker cycling,
//! panic containment, refit fault handling, determinism, and the
//! exactly-once terminal-outcome invariants.

use std::sync::Arc;

use auric_core::recommend::NewCarrier;
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{CarrierId, MarketId, NetworkSnapshot, ParamKind, ValueIdx};
use auric_netgen::{generate, NetScale, TuningKnobs};
use auric_obs::Recorder;
use auric_serve::{
    Answer, Body, BreakerConfig, DegradeReason, RefitError, Rejection, Request, RequestKind,
    Service, ServiceConfig, ShardFaultPlan, ShardFaultRates, ShardState,
};

fn snapshot() -> Arc<NetworkSnapshot> {
    Arc::new(generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot)
}

fn fit_market(snap: &NetworkSnapshot, m: MarketId) -> CfModel {
    CfModel::fit(snap, &Scope::market(snap, m), CfConfig::default())
}

fn fitted(snap: &NetworkSnapshot) -> Vec<(MarketId, CfModel)> {
    snap.markets
        .iter()
        .map(|m| (m.id, fit_market(snap, m.id)))
        .collect()
}

/// A config whose shards are Ready from t=0 (no warmup) unless a test
/// wants otherwise.
fn ready_config() -> ServiceConfig {
    let mut c = ServiceConfig::default();
    c.shard.warmup_us = 0;
    c
}

fn service(snap: &Arc<NetworkSnapshot>, plan: ShardFaultPlan, config: ServiceConfig) -> Service {
    Service::new(
        Arc::clone(snap),
        fitted(snap),
        plan,
        config,
        Recorder::disabled(),
    )
}

fn clone_of(snap: &NetworkSnapshot, c: CarrierId) -> NewCarrier {
    NewCarrier {
        attrs: snap.carrier(c).attrs.clone(),
        neighbors: snap.x2.neighbors(c).to_vec(),
    }
}

fn singular(id: u64, market: MarketId, carrier: CarrierId, t: u64, deadline: u64) -> Request {
    Request {
        id,
        market,
        submitted_us: t,
        deadline_us: deadline,
        kind: RequestKind::Singular { carrier },
    }
}

#[test]
fn warming_serves_degraded_market_mode_then_ready_serves_first_class() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(1), ServiceConfig::default());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // Default warmup is 20ms of simulated time: t=0 is Warming.
    let a = svc.call(&singular(1, m, c, 0, u64::MAX)).expect("answered");
    assert!(a.degraded, "warming answers are degraded, not errors");
    assert_eq!(a.reason, Some(DegradeReason::Warming));
    assert_eq!(a.state, ShardState::Warming);
    let Body::Recommendations(recs) = &a.body else {
        panic!("expected recommendations");
    };
    assert!(!recs.is_empty(), "market mode still answers every param");

    let a = svc
        .call(&singular(2, m, c, 30_000, u64::MAX))
        .expect("answered");
    assert!(!a.degraded, "past warmup the shard serves first-class");
    assert_eq!(a.state, ShardState::Ready);
    assert!(svc.invariant_violations(&[(m, 2)]).is_empty());
}

#[test]
fn expired_requests_are_shed_before_any_shard_work() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(2), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // Fill the virtual worker: one admitted request finishing at t=150.
    assert!(svc.call(&singular(1, m, c, 0, u64::MAX)).is_ok());
    // Cannot start before its deadline (worker busy until 150 > 100).
    assert_eq!(
        svc.call(&singular(2, m, c, 0, 100)),
        Err(Rejection::DeadlineExpired)
    );
    // Already expired on arrival.
    assert_eq!(
        svc.call(&singular(3, m, c, 200, 100)),
        Err(Rejection::DeadlineExpired)
    );

    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.admitted, 1);
    assert_eq!(shard.rejected.deadline_expired, 2);
    assert_eq!(
        shard.dispatched, 1,
        "shed requests must never reach the worker"
    );
    assert!(svc.invariant_violations(&[(m, 3)]).is_empty());
}

#[test]
fn bounded_queue_rejects_overload_with_typed_backpressure() {
    let snap = snapshot();
    let mut config = ready_config();
    config.shard.queue_capacity = 2;
    let svc = service(&snap, ShardFaultPlan::none(3), config);
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let mut outcomes = Vec::new();
    for id in 0..5 {
        outcomes.push(svc.call(&singular(id, m, c, 0, u64::MAX)));
    }
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok());
    for o in &outcomes[2..] {
        assert_eq!(*o, Err(Rejection::Overloaded).map(|_: ()| unreachable!()));
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.rejected.overloaded, 3);
    // Once the queue drains in virtual time, admission resumes.
    assert!(svc.call(&singular(9, m, c, 10_000, u64::MAX)).is_ok());
    assert!(svc.invariant_violations(&[(m, 6)]).is_empty());
}

#[test]
fn injected_panics_are_contained_and_the_fallback_chain_answers() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 4,
        rates: ShardFaultRates {
            worker_panic: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let svc = service(&snap, plan, ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];
    let nc = clone_of(&snap, c);

    // Every primary path panics; every answer must still arrive,
    // degraded, with the panic-fallback reason and a non-empty body.
    for (id, kind) in [
        RequestKind::ColdStart(nc.clone()),
        RequestKind::Pairwise {
            new_carrier: nc.clone(),
            neighbor: nc.neighbors[0],
        },
        RequestKind::Singular { carrier: c },
    ]
    .into_iter()
    .enumerate()
    {
        let a = svc
            .call(&Request {
                id: id as u64,
                market: m,
                submitted_us: id as u64 * 10,
                deadline_us: u64::MAX,
                kind,
            })
            .expect("panic must degrade the answer, not lose it");
        assert!(a.degraded);
        assert_eq!(a.reason, Some(DegradeReason::PanicFallback));
        let Body::Recommendations(recs) = &a.body else {
            panic!("expected recommendations");
        };
        assert!(!recs.is_empty());
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.panics_contained, 3);
    assert_eq!(shard.faults.worker_panics, 3);
    assert_eq!(
        shard.breaker.opened, 1,
        "three consecutive failures open the breaker"
    );
    assert!(svc.invariant_violations(&[(m, 3)]).is_empty());
}

#[test]
fn poisoned_refit_walks_breaker_then_degraded_then_restart() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 5,
        rates: ShardFaultRates {
            poisoned_shard: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let mut config = ready_config();
    config.shard.breaker = BreakerConfig {
        trip_after: 3,
        cooldown_us: 50_000,
        jitter_us: 10_000,
    };
    config.shard.panic_threshold = 5;
    config.shard.restart_delay_us = 100_000;
    let svc = service(&snap, plan, config);
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // A refit that swaps in a poisoned model: every primary call panics.
    svc.refit(m, fit_market(&snap, m), 0)
        .expect("swap succeeds");

    let mut submitted = 0u64;
    let mut t = 1_000;
    let mut id = 0;
    let mut outcomes: Vec<Result<ShardState, Rejection>> = Vec::new();
    // March simulated time forward; ~1 request per ms for 400ms covers
    // trip → cooldown → probe → re-trip → degrade → restart.
    while t < 400_000 {
        let r = svc.call(&singular(id, m, c, t, u64::MAX));
        outcomes.push(r.map(|a| a.state));
        submitted += 1;
        id += 1;
        t += 1_000;
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert!(
        shard.breaker.opened >= 2,
        "breaker must open and re-open from failed probes (opened={})",
        shard.breaker.opened
    );
    assert!(
        shard.rejected.breaker_open > 0,
        "open breaker must reject instead of hammering a panicking model"
    );
    assert_eq!(
        shard.panics_contained, 5,
        "degradation trips at the panic threshold"
    );
    assert_eq!(shard.restarts, 1, "degraded shard restarts on schedule");
    assert_eq!(shard.faults.poisoned_models, 1);
    assert!(
        outcomes.contains(&Ok(ShardState::Degraded)),
        "degraded shard still answers (market mode)"
    );
    assert_eq!(
        *outcomes.last().unwrap(),
        Ok(ShardState::Ready),
        "restart clears the poison and returns to full service"
    );
    assert!(svc.invariant_violations(&[(m, submitted)]).is_empty());
}

#[test]
fn injected_refit_failure_keeps_the_stale_model_serving() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 6,
        rates: ShardFaultRates {
            refit_failure: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let svc = service(&snap, plan, ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let before = svc.model(m).expect("shard exists");
    assert_eq!(
        svc.refit(m, fit_market(&snap, m), 0),
        Err(RefitError::Injected)
    );
    let after = svc.model(m).expect("shard exists");
    assert!(
        Arc::ptr_eq(&before, &after),
        "failed refit must not swap the model"
    );
    // And the stale model keeps serving first-class answers.
    let a = svc.call(&singular(1, m, c, 10, u64::MAX)).unwrap();
    assert!(!a.degraded);
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.refits_failed, 1);
    assert_eq!(shard.model_epoch, 0);
}

#[test]
fn corrupt_model_bytes_are_a_typed_error_and_stale_model_survives() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(7), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let before = svc.model(m).expect("shard exists");
    let err = svc
        .install_model_json(m, b"{ not a model }", 0)
        .expect_err("corrupt bytes must fail typed");
    assert!(matches!(err, RefitError::Load(_)), "got {err:?}");
    assert!(Arc::ptr_eq(&before, &svc.model(m).unwrap()));
    assert!(!svc.call(&singular(1, m, c, 10, u64::MAX)).unwrap().degraded);

    // Unknown markets are typed too, at every entry point.
    let ghost = MarketId(9_999);
    assert_eq!(
        svc.install_model_json(ghost, b"{}", 0),
        Err(RefitError::UnknownMarket)
    );
    assert_eq!(
        svc.call(&singular(2, ghost, c, 20, u64::MAX)),
        Err(Rejection::UnknownMarket)
    );
    assert_eq!(svc.stats().unknown_market, 1);
}

#[test]
fn draining_rejects_new_work_other_shards_unaffected() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(8), ready_config());
    assert!(snap.markets.len() >= 2, "tiny scale has multiple markets");
    let m0 = snap.markets[0].id;
    let m1 = snap.markets[1].id;
    let c0 = snap.carriers_in_market(m0)[0];
    let c1 = snap.carriers_in_market(m1)[0];

    assert!(svc.drain(m0));
    assert_eq!(
        svc.call(&singular(1, m0, c0, 0, u64::MAX)),
        Err(Rejection::Draining)
    );
    assert!(svc.call(&singular(2, m1, c1, 0, u64::MAX)).is_ok());
    assert!(!svc.drain(MarketId(9_999)));
}

#[test]
fn kpi_queries_serve_from_the_cached_report() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(9), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let a = svc
        .call(&Request {
            id: 1,
            market: m,
            submitted_us: 0,
            deadline_us: u64::MAX,
            kind: RequestKind::Kpi { carrier: c },
        })
        .unwrap();
    let Body::KpiHealth(health) = a.body else {
        panic!("expected KPI health");
    };
    let h = health.expect("simulated report covers every carrier");
    assert!((0.0..=1.0).contains(&h), "health {h} out of range");
    assert!(!a.degraded);
}

/// Two same-seed services fed the same mixed chaos schedule must agree
/// exactly — outcome by outcome and stat by stat.
#[test]
fn same_seed_chaos_runs_are_deterministic() {
    let snap = snapshot();
    let run = || {
        let svc = service(&snap, ShardFaultPlan::uniform(42, 0.2), ready_config());
        let mut log: Vec<String> = Vec::new();
        let mut submitted: Vec<(MarketId, u64)> =
            snap.markets.iter().map(|m| (m.id, 0u64)).collect();
        let mut id = 0u64;
        for step in 0..300u64 {
            let mi = (step % snap.markets.len() as u64) as usize;
            let m = snap.markets[mi].id;
            let carriers = snap.carriers_in_market(m);
            let c = carriers[(step as usize / snap.markets.len()) % carriers.len()];
            let t = step * 120;
            let kind = match step % 4 {
                0 => RequestKind::Singular { carrier: c },
                1 => RequestKind::Kpi { carrier: c },
                2 => RequestKind::ColdStart(clone_of(&snap, c)),
                _ => {
                    let nc = clone_of(&snap, c);
                    let neighbor = nc.neighbors[0];
                    RequestKind::Pairwise {
                        new_carrier: nc,
                        neighbor,
                    }
                }
            };
            if step % 97 == 0 {
                let _ = svc.refit(m, fit_market(&snap, m), t);
            }
            let outcome = svc.call(&Request {
                id,
                market: m,
                submitted_us: t,
                deadline_us: t + 2_000,
                kind,
            });
            submitted[mi].1 += 1;
            id += 1;
            log.push(match outcome {
                Ok(a) => format!(
                    "{} ok state={} degraded={} reason={:?} latency={}",
                    a.id,
                    a.state.label(),
                    a.degraded,
                    a.reason.map(|r| r.label()),
                    a.latency_us
                ),
                Err(r) => format!("{id} rej {}", r.label()),
            });
        }
        let violations = svc.invariant_violations(&submitted);
        assert!(violations.is_empty(), "violations: {violations:?}");
        let stats = serde_json::to_string(&svc.stats()).expect("stats serialize");
        (log, stats)
    };
    let (log_a, stats_a) = run();
    let (log_b, stats_b) = run();
    assert_eq!(log_a, log_b, "per-request outcomes must be reproducible");
    assert_eq!(stats_a, stats_b, "chaos report must be reproducible");
}

/// What the primary singular path would answer for `c` under `model` —
/// the ground truth the cache/coalescing tests compare served bodies
/// against.
fn singular_values(snap: &NetworkSnapshot, model: &CfModel, c: CarrierId) -> Vec<ValueIdx> {
    snap.catalog
        .defs()
        .iter()
        .filter(|d| d.kind == ParamKind::Singular)
        .map(|d| model.recommend_local_singular(snap, d.id, c, false).value)
        .collect()
}

fn body_values(body: &Body) -> Vec<ValueIdx> {
    let Body::Recommendations(recs) = body else {
        panic!("expected recommendations");
    };
    recs.iter().map(|r| r.value).collect()
}

/// N identical concurrent requests in one batch: exactly one model
/// lookup (the lead), N identical typed answers. A second identical
/// batch is served entirely from the response cache — still one lookup
/// lifetime-total.
#[test]
fn identical_batch_coalesces_to_one_lookup_with_identical_answers() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(21), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let reqs: Vec<Request> = (0..5).map(|id| singular(id, m, c, 0, u64::MAX)).collect();
    let answers: Vec<Answer> = svc
        .call_batch(&reqs)
        .into_iter()
        .map(|r| r.expect("faultless plan answers everything"))
        .collect();
    assert_eq!(answers.len(), 5);
    for a in &answers {
        assert!(!a.degraded);
        assert_eq!(a.body, answers[0].body, "fanned-out answers must agree");
        assert_eq!(
            body_values(&a.body),
            singular_values(&snap, &svc.model(m).unwrap(), c)
        );
    }
    let shard = svc.stats().shards[0];
    assert_eq!(shard.dispatched, 1, "one lead, one model lookup");
    assert_eq!(shard.coalesced, 4, "the other four rode along");
    assert_eq!(shard.cache_hits, 0, "cold cache: nothing to hit yet");

    // Same batch again: the lead's body is cached now.
    let reqs: Vec<Request> = (5..10)
        .map(|id| singular(id, m, c, 1_000, u64::MAX))
        .collect();
    for r in svc.call_batch(&reqs) {
        let a = r.expect("answered");
        assert_eq!(a.body, answers[0].body);
        assert!(
            a.latency_us < 150,
            "cache hits are priced below a model lookup (got {})",
            a.latency_us
        );
    }
    let shard = svc.stats().shards[0];
    assert_eq!(shard.dispatched, 1, "cache absorbed the whole second batch");
    assert_eq!(shard.cache_hits, 5);
    assert!(svc.invariant_violations(&[(m, 10)]).is_empty());
}

/// Mixed-market batches route per consecutive run and keep input order;
/// unknown markets get typed rejections inline.
#[test]
fn service_batch_routes_per_market_and_keeps_order() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(22), ready_config());
    let m0 = snap.markets[0].id;
    let m1 = snap.markets[1].id;
    let c0 = snap.carriers_in_market(m0)[0];
    let c1 = snap.carriers_in_market(m1)[0];
    let ghost = MarketId(9_999);

    let reqs = vec![
        singular(0, m0, c0, 0, u64::MAX),
        singular(1, m0, c0, 0, u64::MAX),
        singular(2, ghost, c0, 0, u64::MAX),
        singular(3, m1, c1, 0, u64::MAX),
    ];
    let outcomes = svc.call_batch(&reqs);
    assert_eq!(outcomes.len(), 4);
    assert_eq!(outcomes[0].as_ref().unwrap().id, 0);
    assert_eq!(outcomes[1].as_ref().unwrap().id, 1);
    assert_eq!(outcomes[2], Err(Rejection::UnknownMarket));
    assert_eq!(outcomes[3].as_ref().unwrap().id, 3);
    assert!(svc.invariant_violations(&[(m0, 2), (m1, 1)]).is_empty());
}

/// The acceptance-criteria test: hammer one hot probe across
/// alternating refits between two models with *provably different*
/// answers. Every served body must match the model of the current
/// epoch — a single stale-epoch cache serve would produce the previous
/// model's body and fail the comparison.
#[test]
fn cache_never_serves_a_stale_epoch_answer_across_refits() {
    let snap = snapshot();
    let m = snap.markets[0].id;
    let fit_a = || fit_market(&snap, m);
    let fit_b = || CfModel::fit(&snap, &Scope::whole(&snap), CfConfig::default());
    let (ma, mb) = (fit_a(), fit_b());
    // A carrier the two models disagree on — the discriminator that
    // makes stale serving observable.
    let c = snap
        .carriers_in_market(m)
        .iter()
        .copied()
        .find(|&c| singular_values(&snap, &ma, c) != singular_values(&snap, &mb, c))
        .expect("market-scope and whole-scope models must disagree somewhere");

    let svc = Service::new(
        Arc::clone(&snap),
        vec![(m, fit_a())],
        ShardFaultPlan::none(23),
        ready_config(),
        Recorder::disabled(),
    );
    let mut t = 0u64;
    let mut id = 0u64;
    let mut submitted = 0u64;
    for round in 0..8u64 {
        // Rounds 0, 2, .. serve model A; a successful refit flips to
        // the other model (and must invalidate every cached body).
        let expected = if round % 2 == 0 {
            singular_values(&snap, &ma, c)
        } else {
            singular_values(&snap, &mb, c)
        };
        for _ in 0..6 {
            let a = svc
                .call(&singular(id, m, c, t, u64::MAX))
                .expect("faultless plan");
            assert_eq!(
                body_values(&a.body),
                expected,
                "round {round} request {id}: answer from a stale model epoch"
            );
            id += 1;
            submitted += 1;
            t += 1_000;
        }
        let next = if round % 2 == 0 { fit_b() } else { fit_a() };
        svc.refit(m, next, t).expect("faultless refit");
    }
    let shard = svc.stats().shards[0];
    assert_eq!(shard.model_epoch, 8);
    assert!(
        shard.cache_hits >= 8 * 4,
        "the hot probe must actually exercise the cache (hits={})",
        shard.cache_hits
    );
    assert!(svc.invariant_violations(&[(m, submitted)]).is_empty());
}

/// Real-threads chaos: caller threads hammer hot probes in batches
/// while the main thread refits every market as fast as it can. Checks
/// the batched exactly-once invariants under genuine concurrency (the
/// deterministic stale-epoch check lives above).
#[test]
fn concurrent_refit_hammering_with_cache_holds_invariants() {
    let snap = snapshot();
    let svc = Arc::new(service(&snap, ShardFaultPlan::none(24), ready_config()));
    let mut handles = Vec::new();
    for m in &snap.markets {
        let svc = Arc::clone(&svc);
        let snap = Arc::clone(&snap);
        let market = m.id;
        handles.push(std::thread::spawn(move || {
            let carriers = snap.carriers_in_market(market);
            let mut submitted = 0u64;
            for batch in 0..60u64 {
                // Hot probes: three carriers cycle, so batches coalesce
                // and the cache hits across batches between refits.
                let reqs: Vec<Request> = (0..4u64)
                    .map(|k| {
                        let c = carriers[(k % 3) as usize % carriers.len()];
                        singular(batch * 4 + k, market, c, batch * 2_000, u64::MAX)
                    })
                    .collect();
                for r in svc.call_batch(&reqs) {
                    assert!(r.is_ok(), "faultless plan, generous deadline: {r:?}");
                    submitted += 1;
                }
            }
            (market, submitted)
        }));
    }
    for round in 0..10u64 {
        for m in &snap.markets {
            svc.refit(m.id, fit_market(&snap, m.id), round * 10_000)
                .expect("faultless refits succeed");
        }
    }
    let submitted: Vec<(MarketId, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("caller thread panicked"))
        .collect();
    let violations = svc.invariant_violations(&submitted);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let stats = svc.stats();
    let hits: u64 = stats.shards.iter().map(|s| s.cache_hits).sum();
    let coalesced: u64 = stats.shards.iter().map(|s| s.coalesced).sum();
    assert!(hits > 0, "hot probes must hit the cache");
    assert!(coalesced > 0, "hot batches must coalesce");
    for shard in stats.shards {
        assert_eq!(shard.model_epoch, 10, "all swaps landed");
    }
}

/// Real-threads smoke test: concurrent callers per market while the
/// main thread hot-swaps models. Not deterministic — it checks the
/// exactly-once and no-lost-answer invariants under genuine concurrency.
#[test]
fn concurrent_callers_survive_hot_refits() {
    let snap = snapshot();
    let svc = Arc::new(service(&snap, ShardFaultPlan::none(10), ready_config()));
    let mut handles = Vec::new();
    for m in &snap.markets {
        let svc = Arc::clone(&svc);
        let snap = Arc::clone(&snap);
        let market = m.id;
        handles.push(std::thread::spawn(move || {
            let carriers = snap.carriers_in_market(market);
            let mut submitted = 0u64;
            for i in 0..200u64 {
                let c = carriers[i as usize % carriers.len()];
                let r = svc.call(&singular(i, market, c, i * 500, u64::MAX));
                assert!(r.is_ok(), "faultless plan, generous deadline: {r:?}");
                submitted += 1;
            }
            (market, submitted)
        }));
    }
    // Hot-swap every market's model while traffic flows.
    for round in 0..3u64 {
        for m in &snap.markets {
            svc.refit(m.id, fit_market(&snap, m.id), round * 1_000)
                .expect("faultless refits succeed");
        }
    }
    let submitted: Vec<(MarketId, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("caller thread panicked"))
        .collect();
    let violations = svc.invariant_violations(&submitted);
    assert!(violations.is_empty(), "violations: {violations:?}");
    for shard in svc.stats().shards {
        assert_eq!(shard.model_epoch, 3, "all swaps landed");
    }
}

/// Streaming ingestion end to end: the service absorbs delta batches via
/// `refit_delta` — every shard's `(snapshot, model)` pair swaps under the
/// epoch/cache invariants — and at every checkpoint each shard's model is
/// byte-identical to a full scoped refit of the post-batch fleet. Probes
/// cached immediately before a delta refit must never serve a stale body
/// after it.
#[test]
fn delta_refits_swap_fleet_and_model_under_cache_invariants() {
    use auric_model::{apply_fleet_deltas, empty_snapshot, AttrArena, FleetDelta};
    use auric_netgen::stream;

    let scale = NetScale::tiny();
    let mut s = stream(&scale, &TuningKnobs::default());
    let mut cur = empty_snapshot(s.schema().clone(), s.catalog().clone());
    // Phase A: build the fleet outright; the service starts from fitted
    // per-market models, as production would.
    for _ in 0..scale.n_markets {
        let b = s.next_batch().expect("market batch");
        apply_fleet_deltas(&mut cur, &b).expect("consistent batch");
    }
    let mut arena = AttrArena::from_snapshot(&cur);
    let svc = Service::new(
        Arc::new(cur.clone()),
        fitted(&cur),
        ShardFaultPlan::none(31),
        ready_config(),
        Recorder::disabled(),
    );
    let markets: Vec<MarketId> = cur.markets.iter().map(|m| m.id).collect();

    // Phase B retune batches, plus a structural tail (carrier removal —
    // pairs leave, every singular table shifts).
    let mut batches: Vec<Vec<FleetDelta>> = Vec::new();
    while let Some(b) = s.next_batch() {
        batches.push(b);
    }
    batches.push(vec![FleetDelta::RemoveCarrier {
        id: CarrierId(cur.n_carriers() as u32 - 1),
    }]);

    let n_batches = batches.len() as u64;
    let mut t = 0u64;
    let mut id = 0u64;
    let mut submitted: Vec<(MarketId, u64)> = markets.iter().map(|&m| (m, 0)).collect();
    let serve = |svc: &Service, m: MarketId, c: CarrierId, t: u64, id: &mut u64| {
        let a = svc
            .call(&singular(*id, m, c, t, u64::MAX))
            .expect("faultless plan");
        *id += 1;
        a
    };
    for (bi, batch) in batches.iter().enumerate() {
        let digest = apply_fleet_deltas(&mut cur, batch).expect("consistent batch");
        arena.append(&cur);
        let post = Arc::new(cur.clone());

        // Prime + hit the cache on one probe per market right before the
        // swap: these bodies are about to go stale.
        for (mi, &m) in markets.iter().enumerate() {
            let c = cur.carriers_in_market(m)[0];
            serve(&svc, m, c, t, &mut id);
            serve(&svc, m, c, t + 1, &mut id);
            submitted[mi].1 += 2;
            t += 1_000;
        }

        for (m, r) in svc.refit_delta(&post, &arena, &digest, t) {
            r.unwrap_or_else(|e| panic!("faultless delta refit for {m:?}: {e:?}"));
        }

        // Post-swap answers come from the new fleet and model.
        for (mi, &m) in markets.iter().enumerate() {
            let c = cur.carriers_in_market(m)[0];
            let a = serve(&svc, m, c, t, &mut id);
            submitted[mi].1 += 1;
            t += 1_000;
            if bi % 9 == 0 || bi as u64 + 1 == n_batches {
                let fresh = fit_market(&cur, m);
                assert_eq!(
                    body_values(&a.body),
                    singular_values(&cur, &fresh, c),
                    "batch {bi}: stale body served after delta refit of {m:?}"
                );
                let swapped = svc.model(m).expect("shard exists");
                assert_eq!(
                    serde_json::to_string(&*swapped).unwrap(),
                    serde_json::to_string(&fresh).unwrap(),
                    "batch {bi}: delta-refitted model diverged from scoped refit of {m:?}"
                );
            }
        }
    }

    for shard in svc.stats().shards {
        assert_eq!(
            shard.model_epoch, n_batches,
            "every delta batch bumped the epoch exactly once"
        );
        assert!(
            shard.cache_hits >= n_batches,
            "pre-swap probe pairs must exercise the cache (hits={})",
            shard.cache_hits
        );
        assert_eq!(shard.refits_ok, n_batches);
        assert_eq!(shard.refits_failed, 0);
    }
    assert!(svc.invariant_violations(&submitted).is_empty());
}
