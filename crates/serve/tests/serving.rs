//! Chaos-facing integration tests for the serving layer: the shard
//! state machine, deadline shedding, load shedding, breaker cycling,
//! panic containment, refit fault handling, determinism, and the
//! exactly-once terminal-outcome invariants.

use std::sync::Arc;

use auric_core::recommend::NewCarrier;
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{CarrierId, MarketId, NetworkSnapshot};
use auric_netgen::{generate, NetScale, TuningKnobs};
use auric_obs::Recorder;
use auric_serve::{
    Body, BreakerConfig, DegradeReason, RefitError, Rejection, Request, RequestKind, Service,
    ServiceConfig, ShardFaultPlan, ShardFaultRates, ShardState,
};

fn snapshot() -> Arc<NetworkSnapshot> {
    Arc::new(generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot)
}

fn fit_market(snap: &NetworkSnapshot, m: MarketId) -> CfModel {
    CfModel::fit(snap, &Scope::market(snap, m), CfConfig::default())
}

fn fitted(snap: &NetworkSnapshot) -> Vec<(MarketId, CfModel)> {
    snap.markets
        .iter()
        .map(|m| (m.id, fit_market(snap, m.id)))
        .collect()
}

/// A config whose shards are Ready from t=0 (no warmup) unless a test
/// wants otherwise.
fn ready_config() -> ServiceConfig {
    let mut c = ServiceConfig::default();
    c.shard.warmup_us = 0;
    c
}

fn service(snap: &Arc<NetworkSnapshot>, plan: ShardFaultPlan, config: ServiceConfig) -> Service {
    Service::new(
        Arc::clone(snap),
        fitted(snap),
        plan,
        config,
        Recorder::disabled(),
    )
}

fn clone_of(snap: &NetworkSnapshot, c: CarrierId) -> NewCarrier {
    NewCarrier {
        attrs: snap.carrier(c).attrs.clone(),
        neighbors: snap.x2.neighbors(c).to_vec(),
    }
}

fn singular(id: u64, market: MarketId, carrier: CarrierId, t: u64, deadline: u64) -> Request {
    Request {
        id,
        market,
        submitted_us: t,
        deadline_us: deadline,
        kind: RequestKind::Singular { carrier },
    }
}

#[test]
fn warming_serves_degraded_market_mode_then_ready_serves_first_class() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(1), ServiceConfig::default());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // Default warmup is 20ms of simulated time: t=0 is Warming.
    let a = svc.call(&singular(1, m, c, 0, u64::MAX)).expect("answered");
    assert!(a.degraded, "warming answers are degraded, not errors");
    assert_eq!(a.reason, Some(DegradeReason::Warming));
    assert_eq!(a.state, ShardState::Warming);
    let Body::Recommendations(recs) = &a.body else {
        panic!("expected recommendations");
    };
    assert!(!recs.is_empty(), "market mode still answers every param");

    let a = svc
        .call(&singular(2, m, c, 30_000, u64::MAX))
        .expect("answered");
    assert!(!a.degraded, "past warmup the shard serves first-class");
    assert_eq!(a.state, ShardState::Ready);
    assert!(svc.invariant_violations(&[(m, 2)]).is_empty());
}

#[test]
fn expired_requests_are_shed_before_any_shard_work() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(2), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // Fill the virtual worker: one admitted request finishing at t=150.
    assert!(svc.call(&singular(1, m, c, 0, u64::MAX)).is_ok());
    // Cannot start before its deadline (worker busy until 150 > 100).
    assert_eq!(
        svc.call(&singular(2, m, c, 0, 100)),
        Err(Rejection::DeadlineExpired)
    );
    // Already expired on arrival.
    assert_eq!(
        svc.call(&singular(3, m, c, 200, 100)),
        Err(Rejection::DeadlineExpired)
    );

    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.admitted, 1);
    assert_eq!(shard.rejected.deadline_expired, 2);
    assert_eq!(
        shard.dispatched, 1,
        "shed requests must never reach the worker"
    );
    assert!(svc.invariant_violations(&[(m, 3)]).is_empty());
}

#[test]
fn bounded_queue_rejects_overload_with_typed_backpressure() {
    let snap = snapshot();
    let mut config = ready_config();
    config.shard.queue_capacity = 2;
    let svc = service(&snap, ShardFaultPlan::none(3), config);
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let mut outcomes = Vec::new();
    for id in 0..5 {
        outcomes.push(svc.call(&singular(id, m, c, 0, u64::MAX)));
    }
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok());
    for o in &outcomes[2..] {
        assert_eq!(*o, Err(Rejection::Overloaded).map(|_: ()| unreachable!()));
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.rejected.overloaded, 3);
    // Once the queue drains in virtual time, admission resumes.
    assert!(svc.call(&singular(9, m, c, 10_000, u64::MAX)).is_ok());
    assert!(svc.invariant_violations(&[(m, 6)]).is_empty());
}

#[test]
fn injected_panics_are_contained_and_the_fallback_chain_answers() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 4,
        rates: ShardFaultRates {
            worker_panic: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let svc = service(&snap, plan, ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];
    let nc = clone_of(&snap, c);

    // Every primary path panics; every answer must still arrive,
    // degraded, with the panic-fallback reason and a non-empty body.
    for (id, kind) in [
        RequestKind::ColdStart(nc.clone()),
        RequestKind::Pairwise {
            new_carrier: nc.clone(),
            neighbor: nc.neighbors[0],
        },
        RequestKind::Singular { carrier: c },
    ]
    .into_iter()
    .enumerate()
    {
        let a = svc
            .call(&Request {
                id: id as u64,
                market: m,
                submitted_us: id as u64 * 10,
                deadline_us: u64::MAX,
                kind,
            })
            .expect("panic must degrade the answer, not lose it");
        assert!(a.degraded);
        assert_eq!(a.reason, Some(DegradeReason::PanicFallback));
        let Body::Recommendations(recs) = &a.body else {
            panic!("expected recommendations");
        };
        assert!(!recs.is_empty());
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.panics_contained, 3);
    assert_eq!(shard.faults.worker_panics, 3);
    assert_eq!(
        shard.breaker.opened, 1,
        "three consecutive failures open the breaker"
    );
    assert!(svc.invariant_violations(&[(m, 3)]).is_empty());
}

#[test]
fn poisoned_refit_walks_breaker_then_degraded_then_restart() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 5,
        rates: ShardFaultRates {
            poisoned_shard: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let mut config = ready_config();
    config.shard.breaker = BreakerConfig {
        trip_after: 3,
        cooldown_us: 50_000,
        jitter_us: 10_000,
    };
    config.shard.panic_threshold = 5;
    config.shard.restart_delay_us = 100_000;
    let svc = service(&snap, plan, config);
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    // A refit that swaps in a poisoned model: every primary call panics.
    svc.refit(m, fit_market(&snap, m), 0)
        .expect("swap succeeds");

    let mut submitted = 0u64;
    let mut t = 1_000;
    let mut id = 0;
    let mut outcomes: Vec<Result<ShardState, Rejection>> = Vec::new();
    // March simulated time forward; ~1 request per ms for 400ms covers
    // trip → cooldown → probe → re-trip → degrade → restart.
    while t < 400_000 {
        let r = svc.call(&singular(id, m, c, t, u64::MAX));
        outcomes.push(r.map(|a| a.state));
        submitted += 1;
        id += 1;
        t += 1_000;
    }
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert!(
        shard.breaker.opened >= 2,
        "breaker must open and re-open from failed probes (opened={})",
        shard.breaker.opened
    );
    assert!(
        shard.rejected.breaker_open > 0,
        "open breaker must reject instead of hammering a panicking model"
    );
    assert_eq!(
        shard.panics_contained, 5,
        "degradation trips at the panic threshold"
    );
    assert_eq!(shard.restarts, 1, "degraded shard restarts on schedule");
    assert_eq!(shard.faults.poisoned_models, 1);
    assert!(
        outcomes.contains(&Ok(ShardState::Degraded)),
        "degraded shard still answers (market mode)"
    );
    assert_eq!(
        *outcomes.last().unwrap(),
        Ok(ShardState::Ready),
        "restart clears the poison and returns to full service"
    );
    assert!(svc.invariant_violations(&[(m, submitted)]).is_empty());
}

#[test]
fn injected_refit_failure_keeps_the_stale_model_serving() {
    let snap = snapshot();
    let plan = ShardFaultPlan {
        seed: 6,
        rates: ShardFaultRates {
            refit_failure: 1.0,
            ..ShardFaultRates::none()
        },
    };
    let svc = service(&snap, plan, ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let before = svc.model(m).expect("shard exists");
    assert_eq!(
        svc.refit(m, fit_market(&snap, m), 0),
        Err(RefitError::Injected)
    );
    let after = svc.model(m).expect("shard exists");
    assert!(
        Arc::ptr_eq(&before, &after),
        "failed refit must not swap the model"
    );
    // And the stale model keeps serving first-class answers.
    let a = svc.call(&singular(1, m, c, 10, u64::MAX)).unwrap();
    assert!(!a.degraded);
    let stats = svc.stats();
    let shard = stats.shards.iter().find(|s| s.market == m.0).unwrap();
    assert_eq!(shard.refits_failed, 1);
    assert_eq!(shard.model_epoch, 0);
}

#[test]
fn corrupt_model_bytes_are_a_typed_error_and_stale_model_survives() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(7), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let before = svc.model(m).expect("shard exists");
    let err = svc
        .install_model_json(m, b"{ not a model }", 0)
        .expect_err("corrupt bytes must fail typed");
    assert!(matches!(err, RefitError::Load(_)), "got {err:?}");
    assert!(Arc::ptr_eq(&before, &svc.model(m).unwrap()));
    assert!(!svc.call(&singular(1, m, c, 10, u64::MAX)).unwrap().degraded);

    // Unknown markets are typed too, at every entry point.
    let ghost = MarketId(9_999);
    assert_eq!(
        svc.install_model_json(ghost, b"{}", 0),
        Err(RefitError::UnknownMarket)
    );
    assert_eq!(
        svc.call(&singular(2, ghost, c, 20, u64::MAX)),
        Err(Rejection::UnknownMarket)
    );
    assert_eq!(svc.stats().unknown_market, 1);
}

#[test]
fn draining_rejects_new_work_other_shards_unaffected() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(8), ready_config());
    assert!(snap.markets.len() >= 2, "tiny scale has multiple markets");
    let m0 = snap.markets[0].id;
    let m1 = snap.markets[1].id;
    let c0 = snap.carriers_in_market(m0)[0];
    let c1 = snap.carriers_in_market(m1)[0];

    assert!(svc.drain(m0));
    assert_eq!(
        svc.call(&singular(1, m0, c0, 0, u64::MAX)),
        Err(Rejection::Draining)
    );
    assert!(svc.call(&singular(2, m1, c1, 0, u64::MAX)).is_ok());
    assert!(!svc.drain(MarketId(9_999)));
}

#[test]
fn kpi_queries_serve_from_the_cached_report() {
    let snap = snapshot();
    let svc = service(&snap, ShardFaultPlan::none(9), ready_config());
    let m = snap.markets[0].id;
    let c = snap.carriers_in_market(m)[0];

    let a = svc
        .call(&Request {
            id: 1,
            market: m,
            submitted_us: 0,
            deadline_us: u64::MAX,
            kind: RequestKind::Kpi { carrier: c },
        })
        .unwrap();
    let Body::KpiHealth(health) = a.body else {
        panic!("expected KPI health");
    };
    let h = health.expect("simulated report covers every carrier");
    assert!((0.0..=1.0).contains(&h), "health {h} out of range");
    assert!(!a.degraded);
}

/// Two same-seed services fed the same mixed chaos schedule must agree
/// exactly — outcome by outcome and stat by stat.
#[test]
fn same_seed_chaos_runs_are_deterministic() {
    let snap = snapshot();
    let run = || {
        let svc = service(&snap, ShardFaultPlan::uniform(42, 0.2), ready_config());
        let mut log: Vec<String> = Vec::new();
        let mut submitted: Vec<(MarketId, u64)> =
            snap.markets.iter().map(|m| (m.id, 0u64)).collect();
        let mut id = 0u64;
        for step in 0..300u64 {
            let mi = (step % snap.markets.len() as u64) as usize;
            let m = snap.markets[mi].id;
            let carriers = snap.carriers_in_market(m);
            let c = carriers[(step as usize / snap.markets.len()) % carriers.len()];
            let t = step * 120;
            let kind = match step % 4 {
                0 => RequestKind::Singular { carrier: c },
                1 => RequestKind::Kpi { carrier: c },
                2 => RequestKind::ColdStart(clone_of(&snap, c)),
                _ => {
                    let nc = clone_of(&snap, c);
                    let neighbor = nc.neighbors[0];
                    RequestKind::Pairwise {
                        new_carrier: nc,
                        neighbor,
                    }
                }
            };
            if step % 97 == 0 {
                let _ = svc.refit(m, fit_market(&snap, m), t);
            }
            let outcome = svc.call(&Request {
                id,
                market: m,
                submitted_us: t,
                deadline_us: t + 2_000,
                kind,
            });
            submitted[mi].1 += 1;
            id += 1;
            log.push(match outcome {
                Ok(a) => format!(
                    "{} ok state={} degraded={} reason={:?} latency={}",
                    a.id,
                    a.state.label(),
                    a.degraded,
                    a.reason.map(|r| r.label()),
                    a.latency_us
                ),
                Err(r) => format!("{id} rej {}", r.label()),
            });
        }
        let violations = svc.invariant_violations(&submitted);
        assert!(violations.is_empty(), "violations: {violations:?}");
        let stats = serde_json::to_string(&svc.stats()).expect("stats serialize");
        (log, stats)
    };
    let (log_a, stats_a) = run();
    let (log_b, stats_b) = run();
    assert_eq!(log_a, log_b, "per-request outcomes must be reproducible");
    assert_eq!(stats_a, stats_b, "chaos report must be reproducible");
}

/// Real-threads smoke test: concurrent callers per market while the
/// main thread hot-swaps models. Not deterministic — it checks the
/// exactly-once and no-lost-answer invariants under genuine concurrency.
#[test]
fn concurrent_callers_survive_hot_refits() {
    let snap = snapshot();
    let svc = Arc::new(service(&snap, ShardFaultPlan::none(10), ready_config()));
    let mut handles = Vec::new();
    for m in &snap.markets {
        let svc = Arc::clone(&svc);
        let snap = Arc::clone(&snap);
        let market = m.id;
        handles.push(std::thread::spawn(move || {
            let carriers = snap.carriers_in_market(market);
            let mut submitted = 0u64;
            for i in 0..200u64 {
                let c = carriers[i as usize % carriers.len()];
                let r = svc.call(&singular(i, market, c, i * 500, u64::MAX));
                assert!(r.is_ok(), "faultless plan, generous deadline: {r:?}");
                submitted += 1;
            }
            (market, submitted)
        }));
    }
    // Hot-swap every market's model while traffic flows.
    for round in 0..3u64 {
        for m in &snap.markets {
            svc.refit(m.id, fit_market(&snap, m.id), round * 1_000)
                .expect("faultless refits succeed");
        }
    }
    let submitted: Vec<(MarketId, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("caller thread panicked"))
        .collect();
    let violations = svc.invariant_violations(&submitted);
    assert!(violations.is_empty(), "violations: {violations:?}");
    for shard in svc.stats().shards {
        assert_eq!(shard.model_epoch, 3, "all swaps landed");
    }
}
