//! Emits `BENCH_cf.json`: the packed-key CF hot path timed against the
//! unpacked reference implementation (`auric_core::legacy`) at the medium
//! (evaluation-default) scale.
//!
//! Two workloads are measured, best-of-N wall clock each:
//!   * `fit` — `CfModel::fit` over the whole network, and
//!   * `local_loo` — a leave-one-out local recommendation for every
//!     parameter at every carrier and pair (the accuracy-report loop).
//!
//! Run with `cargo run --release -p auric-bench --bin bench_cf`; debug
//! builds are rejected because the numbers would be meaningless.

use std::hint::black_box;
use std::time::Instant;

use auric_bench::{local_loo_sweep, local_loo_sweep_legacy};
use auric_core::legacy::LegacyCfModel;
use auric_core::{fit_worker_threads, CfConfig, CfModel, FitOptions, Scope};
use auric_netgen::{generate, NetScale, TuningKnobs};
use auric_obs::Recorder;
use serde_json::json;

const REPS: usize = 3;

/// Best-of-`REPS` wall-clock seconds for `f`.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("bench_cf: refusing to time a debug build; use --release");
        std::process::exit(2);
    }

    let scale = NetScale::medium();
    eprintln!(
        "bench_cf: generating medium network ({} markets x {} eNBs)...",
        scale.n_markets, scale.enbs_per_market
    );
    let net = generate(&scale, &TuningKnobs::default());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let config = CfConfig::default();

    // Untimed warm-up: fault in the snapshot and heap before any timed
    // rep, so the first workload measured doesn't absorb the cold-start
    // cost the later ones skip.
    black_box(CfModel::fit(snap, &scope, config));

    eprintln!("bench_cf: timing fit ({REPS} reps each)...");
    let (fit_packed_s, packed) = best_of(|| CfModel::fit(snap, &scope, config));
    let (fit_legacy_s, legacy) = best_of(|| LegacyCfModel::fit(snap, &scope, config));
    // The worker count `fit` actually uses — NOT the machine's total
    // parallelism: fit clamps to the number of parameters.
    let fit_threads = fit_worker_threads(snap.catalog.len());
    eprintln!("bench_cf: timing single-thread fit ({REPS} reps)...");
    let (fit_single_s, _) = best_of(|| {
        CfModel::fit_with(
            snap,
            &scope,
            config,
            FitOptions {
                threads: Some(1),
                ..FitOptions::default()
            },
        )
    });
    eprintln!("bench_cf: timing recorder overhead (paired, {REPS} reps)...");
    // Overhead is measured from *interleaved* pairs — one disabled fit
    // immediately followed by one recorder-enabled fit — rather than
    // comparing against `fit_packed_s` from an earlier timing window.
    // On this workload, identical code paths timed minutes apart drift
    // by ~10% (allocator/page-cache state), which an earlier layout of
    // this bench reported as recorder overhead.
    let mut fit_base_s = f64::INFINITY;
    let mut fit_obs_s = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        black_box(CfModel::fit(snap, &scope, config));
        fit_base_s = fit_base_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(CfModel::fit_with(
            snap,
            &scope,
            config,
            FitOptions {
                obs: Recorder::wall(),
                threads: None,
                key_cache: None,
            },
        ));
        fit_obs_s = fit_obs_s.min(t0.elapsed().as_secs_f64());
    }
    let obs_overhead_pct = 100.0 * (fit_obs_s - fit_base_s) / fit_base_s;

    eprintln!("bench_cf: timing local leave-one-out sweep ({REPS} reps each)...");
    let (loo_packed_s, sum_packed) = best_of(|| local_loo_sweep(snap, &scope, &packed));
    let (loo_legacy_s, sum_legacy) = best_of(|| local_loo_sweep_legacy(snap, &scope, &legacy));
    assert_eq!(
        sum_packed, sum_legacy,
        "packed and legacy sweeps disagree — the timing comparison is void"
    );

    let fit_speedup = fit_legacy_s / fit_packed_s;
    let loo_speedup = loo_legacy_s / loo_packed_s;
    let report = json!({
        "bench": "cf_hot_path",
        "scale": "medium",
        "n_markets": scale.n_markets,
        "enbs_per_market": scale.enbs_per_market,
        "n_carriers": snap.n_carriers(),
        "n_pairs": snap.x2.n_pairs(),
        "n_params": snap.catalog.len(),
        "threads": fit_threads,
        "reps": REPS,
        "fit": json!({
            "legacy_s": fit_legacy_s,
            "packed_s": fit_packed_s,
            "speedup": fit_speedup,
            "single_thread_s": fit_single_s,
            "thread_speedup": fit_single_s / fit_packed_s,
            "obs_paired_base_s": fit_base_s,
            "obs_enabled_s": fit_obs_s,
            "obs_overhead_pct": obs_overhead_pct,
        }),
        "local_loo_sweep": json!({
            "legacy_s": loo_legacy_s,
            "packed_s": loo_packed_s,
            "speedup": loo_speedup,
            "checksum": sum_packed,
        }),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_cf.json", &text).expect("write BENCH_cf.json");
    println!("{text}");
    eprintln!(
        "bench_cf: fit {fit_speedup:.2}x vs legacy ({fit_threads} threads, \
         {ts:.2}x vs single-thread, obs overhead {obs_overhead_pct:+.1}%), \
         local LoO sweep {loo_speedup:.2}x (wrote BENCH_cf.json)",
        ts = fit_single_s / fit_packed_s,
    );
}
