//! Emits `BENCH_serve.json`: a deterministic chaos/load report for the
//! `auric-serve` front door.
//!
//! Six chaos scenarios run back to back against fresh per-market
//! services — `none`, then each shard fault in isolation at an
//! aggressive rate (`latency_spike`, `worker_panic`, `poisoned_shard`,
//! `refit_failure`), then `mixed` with every fault at a moderate rate.
//! Each scenario drives mixed traffic (singular, pairwise, cold-start,
//! KPI queries) from one client thread per market, refitting shards
//! mid-flight, and then checks the serving invariants: every submission
//! gets exactly one typed terminal outcome, and shed/rejected requests
//! do zero shard work.
//!
//! Two perf scenarios (`hot_key`, `uniform_key`) then run the *same*
//! pre-built seeded request plan twice at equal fault rates: baseline
//! (cache disabled, one request at a time) vs batched (coalescing
//! batches of 8 with the default epoch-validated cache), with refits
//! aligned to the same request positions on both sides. Virtual
//! throughput is `answered / busy_us` — the work the shard actually
//! booked — so the speedup and hit-rate numbers are deterministic. The
//! bench self-enforces the hot-key budget (speedup ≥ 3×, hit rate
//! ≥ 0.5) and exits nonzero when it regresses.
//!
//! Everything in the report is *virtual*: latencies are simulated µs,
//! throughput is simulated rps, and fault schedules are seeded — so the
//! whole report is byte-identical across same-seed runs (CI diffs two
//! runs). Wall-clock timings go to stderr only.
//!
//! Run with `cargo run --release -p auric-bench --bin bench_serve --
//! [tiny|small|medium] [--seed N] [--out PATH]`. Exits nonzero if any
//! invariant is violated.

use std::sync::Arc;
use std::time::Instant;

use auric_core::recommend::NewCarrier;
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{CarrierId, MarketId, NetworkSnapshot};
use auric_netgen::{generate, NetScale, TuningKnobs};
use auric_obs::Recorder;
use auric_serve::{Request, RequestKind, Service, ServiceConfig, ShardFaultPlan, ShardFaultRates};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde_json::{json, Value};

/// Requests per market per scenario, by scale.
fn requests_per_market(scale_name: &str) -> u64 {
    match scale_name {
        "tiny" => 600,
        "small" => 1_200,
        _ => 2_000,
    }
}

/// One scenario: a name and its shard fault rates.
fn scenarios() -> Vec<(&'static str, ShardFaultRates)> {
    let none = ShardFaultRates::none();
    vec![
        ("none", none),
        (
            "latency_spike",
            ShardFaultRates {
                latency_spike: 0.08,
                ..none
            },
        ),
        (
            "worker_panic",
            ShardFaultRates {
                worker_panic: 0.05,
                ..none
            },
        ),
        (
            "poisoned_shard",
            ShardFaultRates {
                poisoned_shard: 0.5,
                ..none
            },
        ),
        (
            "refit_failure",
            ShardFaultRates {
                refit_failure: 0.5,
                ..none
            },
        ),
        ("mixed", ShardFaultRates::uniform(0.03)),
    ]
}

fn fit_market(snap: &NetworkSnapshot, m: MarketId) -> CfModel {
    CfModel::fit(snap, &Scope::market(snap, m), CfConfig::default())
}

fn clone_of(snap: &NetworkSnapshot, c: CarrierId) -> NewCarrier {
    NewCarrier {
        attrs: snap.carrier(c).attrs.clone(),
        neighbors: snap.x2.neighbors(c).to_vec(),
    }
}

/// Per-market client outcome tally (virtual metrics only).
#[derive(Default)]
struct ClientTally {
    submitted: u64,
    answered_ok: u64,
    answered_degraded: u64,
    by_kind: [u64; 4], // singular, pairwise, cold_start, kpi (submitted)
    rejected_unknown: u64,
    rejected_draining: u64,
    rejected_breaker: u64,
    rejected_overloaded: u64,
    rejected_deadline: u64,
    latencies_us: Vec<u64>,
    /// Last virtual submission instant (for simulated rps).
    end_us: u64,
    refits_attempted: u64,
}

/// Drives one market's seeded traffic against the shared service.
fn drive_market(
    svc: &Service,
    snap: &NetworkSnapshot,
    market: MarketId,
    seed: u64,
    n_requests: u64,
    refit_every: u64,
) -> ClientTally {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let carriers = snap.carriers_in_market(market);
    let mut tally = ClientTally::default();
    let mut t: u64 = 0;
    for i in 0..n_requests {
        t += rng.random_range(80..400u64);
        let deadline = t + rng.random_range(1_000..8_000u64);
        let c = carriers[rng.random_range(0..carriers.len() as u64) as usize];
        // Traffic mix: ~40% singular, ~25% pairwise, ~20% cold-start,
        // ~15% KPI queries.
        let draw = rng.random_range(0..100u64);
        let (kind, kind_idx) = if draw < 40 {
            (RequestKind::Singular { carrier: c }, 0)
        } else if draw < 65 {
            let nc = clone_of(snap, c);
            match nc.neighbors.first().copied() {
                Some(neighbor) => (
                    RequestKind::Pairwise {
                        new_carrier: nc,
                        neighbor,
                    },
                    1,
                ),
                None => (RequestKind::Singular { carrier: c }, 0),
            }
        } else if draw < 85 {
            (RequestKind::ColdStart(clone_of(snap, c)), 2)
        } else {
            (RequestKind::Kpi { carrier: c }, 3)
        };
        // Periodic hot refit from this market's own thread, so the
        // shard's refit fault stream stays in submission order.
        if i > 0 && i % refit_every == 0 {
            tally.refits_attempted += 1;
            let _ = svc.refit(market, fit_market(snap, market), t);
        }
        let outcome = svc.call(&Request {
            id: u64::from(market.0) << 32 | i,
            market,
            submitted_us: t,
            deadline_us: deadline,
            kind,
        });
        tally.submitted += 1;
        tally.by_kind[kind_idx] += 1;
        match outcome {
            Ok(a) => {
                if a.degraded {
                    tally.answered_degraded += 1;
                } else {
                    tally.answered_ok += 1;
                }
                tally.latencies_us.push(a.latency_us);
            }
            Err(r) => match r {
                auric_serve::Rejection::UnknownMarket => tally.rejected_unknown += 1,
                auric_serve::Rejection::Draining => tally.rejected_draining += 1,
                auric_serve::Rejection::BreakerOpen => tally.rejected_breaker += 1,
                auric_serve::Rejection::Overloaded => tally.rejected_overloaded += 1,
                auric_serve::Rejection::DeadlineExpired => tally.rejected_deadline += 1,
            },
        }
        tally.end_us = t;
    }
    tally
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Runs one scenario and returns (report section, invariant violations).
fn run_scenario(
    snap: &Arc<NetworkSnapshot>,
    name: &str,
    rates: ShardFaultRates,
    seed: u64,
    n_requests: u64,
) -> (Value, Vec<String>) {
    let wall = Instant::now();
    let models = snap
        .markets
        .iter()
        .map(|m| (m.id, fit_market(snap, m.id)))
        .collect();
    let plan = ShardFaultPlan { seed, rates };
    let svc = Arc::new(Service::new(
        Arc::clone(snap),
        models,
        plan,
        ServiceConfig::default(),
        Recorder::disabled(),
    ));

    // One client thread per market: per-shard request order (and hence
    // the fault stream) is fully determined by the seeds.
    let tallies: Vec<(MarketId, ClientTally)> = std::thread::scope(|s| {
        let handles: Vec<_> = snap
            .markets
            .iter()
            .map(|m| {
                let svc = Arc::clone(&svc);
                let snap = Arc::clone(snap);
                let market = m.id;
                let client_seed =
                    seed ^ (u64::from(market.0) + 1).wrapping_mul(0xA5A5_5A5A_1234_5678);
                s.spawn(move || {
                    (
                        market,
                        drive_market(&svc, &snap, market, client_seed, n_requests, 150),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let submitted: Vec<(MarketId, u64)> = tallies.iter().map(|(m, t)| (*m, t.submitted)).collect();
    let violations = svc.invariant_violations(&submitted);

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|(_, t)| t.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let total: u64 = tallies.iter().map(|(_, t)| t.submitted).sum();
    let answered: u64 = tallies
        .iter()
        .map(|(_, t)| t.answered_ok + t.answered_degraded)
        .sum();
    let end_us = tallies.iter().map(|(_, t)| t.end_us).max().unwrap_or(0);
    let sim_rps = if end_us == 0 {
        0.0
    } else {
        answered as f64 / (end_us as f64 / 1e6)
    };
    let stats = svc.stats();
    let shard_sections: Vec<Value> = stats.shards.iter().map(serde_json::value_of).collect();
    let sum = |f: fn(&ClientTally) -> u64| -> u64 { tallies.iter().map(|(_, t)| f(t)).sum() };
    let section = json!({
        "scenario": name,
        "fault_rates": json!({
            "latency_spike": rates.latency_spike,
            "worker_panic": rates.worker_panic,
            "poisoned_shard": rates.poisoned_shard,
            "refit_failure": rates.refit_failure,
        }),
        "traffic": json!({
            "submitted": total,
            "singular": sum(|t| t.by_kind[0]),
            "pairwise": sum(|t| t.by_kind[1]),
            "cold_start": sum(|t| t.by_kind[2]),
            "kpi": sum(|t| t.by_kind[3]),
            "refits_attempted": sum(|t| t.refits_attempted),
        }),
        "outcomes": json!({
            "answered_ok": sum(|t| t.answered_ok),
            "answered_degraded": sum(|t| t.answered_degraded),
            "rejected_draining": sum(|t| t.rejected_draining),
            "rejected_breaker_open": sum(|t| t.rejected_breaker),
            "rejected_overloaded": sum(|t| t.rejected_overloaded),
            "shed_deadline": sum(|t| t.rejected_deadline),
            "rejected_unknown_market": sum(|t| t.rejected_unknown),
        }),
        "virtual_latency_us": json!({
            "p50": percentile(&latencies, 0.50),
            "p95": percentile(&latencies, 0.95),
            "p99": percentile(&latencies, 0.99),
            "max": latencies.last().copied().unwrap_or(0),
        }),
        "sim_rps": (sim_rps * 10.0).round() / 10.0,
        "shards": shard_sections,
        "invariant_violations": violations,
    });
    eprintln!(
        "bench_serve: scenario {name}: {total} requests, {} violations, {:.2}s wall",
        violations.len(),
        wall.elapsed().as_secs_f64()
    );
    let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("service still shared"));
    svc.shutdown();
    (section, violations)
}

/// Refit alignment for the perf A/B runs: a multiple of `PERF_WINDOW`
/// so the one-at-a-time and batched sides refit at the same request
/// positions.
const PERF_REFIT_EVERY: usize = 200;
/// Batch window for the batched side of the perf A/B runs.
const PERF_WINDOW: usize = 8;

/// Pre-builds one market's seeded request plan for the perf scenarios.
/// `hot` skews 95% of the traffic onto three hot carriers (cache-hit
/// territory); otherwise carriers draw uniformly. Deadlines are
/// generous so both sides answer (rather than shed) the same plan.
fn build_plan(
    snap: &NetworkSnapshot,
    market: MarketId,
    seed: u64,
    n_requests: u64,
    hot: bool,
) -> Vec<Request> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let carriers = snap.carriers_in_market(market);
    let hot_set: Vec<CarrierId> = carriers.iter().copied().take(3).collect();
    let mut t: u64 = 0;
    (0..n_requests)
        .map(|i| {
            t += rng.random_range(80..400u64);
            let deadline = t + rng.random_range(50_000..100_000u64);
            let c = if hot && rng.random_range(0..100u64) < 95 {
                hot_set[rng.random_range(0..hot_set.len() as u64) as usize]
            } else {
                carriers[rng.random_range(0..carriers.len() as u64) as usize]
            };
            let draw = rng.random_range(0..100u64);
            let kind = if draw < 40 {
                RequestKind::Singular { carrier: c }
            } else if draw < 65 {
                let nc = clone_of(snap, c);
                match nc.neighbors.first().copied() {
                    Some(neighbor) => RequestKind::Pairwise {
                        new_carrier: nc,
                        neighbor,
                    },
                    None => RequestKind::Singular { carrier: c },
                }
            } else if draw < 85 {
                RequestKind::ColdStart(clone_of(snap, c))
            } else {
                RequestKind::Kpi { carrier: c }
            };
            Request {
                id: u64::from(market.0) << 32 | i,
                market,
                submitted_us: t,
                deadline_us: deadline,
                kind,
            }
        })
        .collect()
}

/// Runs every market's plan against a fresh service (one client thread
/// per market, windows of `window` requests per `call_batch`) and
/// returns `(answered, busy_us, stats, violations)`.
fn run_perf_side(
    snap: &Arc<NetworkSnapshot>,
    plans: &[(MarketId, Vec<Request>)],
    seed: u64,
    config: ServiceConfig,
    window: usize,
) -> (u64, u64, auric_serve::ServiceStats, Vec<String>) {
    let models = snap
        .markets
        .iter()
        .map(|m| (m.id, fit_market(snap, m.id)))
        .collect();
    let plan = ShardFaultPlan {
        seed,
        rates: ShardFaultRates::none(),
    };
    let svc = Arc::new(Service::new(
        Arc::clone(snap),
        models,
        plan,
        config,
        Recorder::disabled(),
    ));
    let answered: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|(market, plan)| {
                let svc = Arc::clone(&svc);
                let snap = Arc::clone(snap);
                let market = *market;
                s.spawn(move || {
                    let mut answered = 0u64;
                    let mut served = 0usize;
                    for chunk in plan.chunks(window) {
                        // Refit at fixed request positions; the window
                        // divides the stride, so both A/B sides refit at
                        // identical points in the plan.
                        if served > 0 && served.is_multiple_of(PERF_REFIT_EVERY) {
                            let _ =
                                svc.refit(market, fit_market(&snap, market), chunk[0].submitted_us);
                        }
                        answered +=
                            svc.call_batch(chunk).iter().filter(|r| r.is_ok()).count() as u64;
                        served += chunk.len();
                    }
                    answered
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("perf client thread panicked"))
            .sum()
    });
    let submitted: Vec<(MarketId, u64)> = plans.iter().map(|(m, p)| (*m, p.len() as u64)).collect();
    let violations = svc.invariant_violations(&submitted);
    let stats = svc.stats();
    let busy_us: u64 = stats.shards.iter().map(|s| s.busy_us).sum();
    let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("service still shared"));
    svc.shutdown();
    (answered, busy_us, stats, violations)
}

/// One perf A/B scenario: the same plan unbatched/uncached vs
/// batched/cached. Returns the report section plus any invariant
/// violations; the returned `(speedup, hit_rate)` feed the hot-key
/// budget check.
fn run_perf_scenario(
    snap: &Arc<NetworkSnapshot>,
    name: &str,
    hot: bool,
    seed: u64,
    n_requests: u64,
) -> (Value, Vec<String>, f64, f64) {
    let wall = Instant::now();
    let plans: Vec<(MarketId, Vec<Request>)> = snap
        .markets
        .iter()
        .map(|m| {
            let plan_seed = seed ^ (u64::from(m.id.0) + 1).wrapping_mul(0xC3C3_3C3C_9876_1234);
            (m.id, build_plan(snap, m.id, plan_seed, n_requests, hot))
        })
        .collect();

    let mut baseline_cfg = ServiceConfig::default();
    baseline_cfg.shard.cache_capacity = 0;
    let (base_answered, base_busy, base_stats, mut violations) =
        run_perf_side(snap, &plans, seed, baseline_cfg, 1);
    let (batch_answered, batch_busy, batch_stats, batch_violations) =
        run_perf_side(snap, &plans, seed, ServiceConfig::default(), PERF_WINDOW);
    violations.extend(batch_violations);

    let rps = |answered: u64, busy_us: u64| {
        if busy_us == 0 {
            0.0
        } else {
            (answered as f64 / (busy_us as f64 / 1e6) * 10.0).round() / 10.0
        }
    };
    let base_rps = rps(base_answered, base_busy);
    let batch_rps = rps(batch_answered, batch_busy);
    let speedup = if base_rps == 0.0 {
        0.0
    } else {
        (batch_rps / base_rps * 100.0).round() / 100.0
    };
    let admitted: u64 = batch_stats.shards.iter().map(|s| s.admitted).sum();
    let hits: u64 = batch_stats.shards.iter().map(|s| s.cache_hits).sum();
    let coalesced: u64 = batch_stats.shards.iter().map(|s| s.coalesced).sum();
    let rate = |n: u64| {
        if admitted == 0 {
            0.0
        } else {
            (n as f64 / admitted as f64 * 10_000.0).round() / 10_000.0
        }
    };
    let hit_rate = rate(hits);
    let section = json!({
        "scenario": name,
        "baseline": json!({
            "answered": base_answered,
            "busy_us": base_busy,
            "virtual_rps": base_rps,
            "dispatched": base_stats.shards.iter().map(|s| s.dispatched).sum::<u64>(),
        }),
        "batched": json!({
            "answered": batch_answered,
            "busy_us": batch_busy,
            "virtual_rps": batch_rps,
            "dispatched": batch_stats.shards.iter().map(|s| s.dispatched).sum::<u64>(),
            "cache_hits": hits,
            "coalesced": coalesced,
            "hit_rate": hit_rate,
            "coalesce_rate": rate(coalesced),
        }),
        "speedup": speedup,
        "invariant_violations": violations,
    });
    eprintln!(
        "bench_serve: perf {name}: {base_rps:.1} -> {batch_rps:.1} virtual rps \
         ({speedup:.2}x, hit rate {hit_rate:.3}), {:.2}s wall",
        wall.elapsed().as_secs_f64()
    );
    (section, violations, speedup, hit_rate)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "tiny".to_string();
    let mut seed: u64 = 7;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" | "small" | "medium" => scale_name = args[i].clone(),
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            other => {
                eprintln!(
                    "bench_serve: unknown arg {other}; usage: \
                     bench_serve [tiny|small|medium] [--seed N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let scale = match scale_name.as_str() {
        "tiny" => NetScale::tiny(),
        "small" => NetScale::small(),
        _ => NetScale::medium(),
    };
    let n_requests = requests_per_market(&scale_name);

    eprintln!(
        "bench_serve: generating {scale_name} network ({} markets x {} eNBs), seed {seed}...",
        scale.n_markets, scale.enbs_per_market
    );
    let snap = Arc::new(generate(&scale, &TuningKnobs::none()).snapshot);

    let mut sections = Vec::new();
    let mut all_violations = Vec::new();
    for (idx, (name, rates)) in scenarios().into_iter().enumerate() {
        let scenario_seed = seed ^ ((idx as u64 + 1) << 40);
        let (section, violations) = run_scenario(&snap, name, rates, scenario_seed, n_requests);
        sections.push(section);
        all_violations.extend(violations.into_iter().map(|v| format!("{name}: {v}")));
    }

    let mut perf_sections = Vec::new();
    let mut budget_failures = Vec::new();
    for (idx, (name, hot)) in [("hot_key", true), ("uniform_key", false)]
        .into_iter()
        .enumerate()
    {
        let scenario_seed = seed ^ ((idx as u64 + 16) << 40);
        let (section, violations, speedup, hit_rate) =
            run_perf_scenario(&snap, name, hot, scenario_seed, n_requests);
        perf_sections.push(section);
        all_violations.extend(violations.into_iter().map(|v| format!("{name}: {v}")));
        if hot {
            // The serving-hot-path budget: batching + caching must buy
            // at least 3x virtual throughput on hot-key traffic, and
            // the cache must actually absorb most of it.
            if speedup < 3.0 {
                budget_failures.push(format!(
                    "hot_key speedup {speedup:.2}x below the 3.0x budget"
                ));
            }
            if hit_rate < 0.5 {
                budget_failures.push(format!(
                    "hot_key cache hit rate {hit_rate:.3} below the 0.5 budget"
                ));
            }
        }
    }

    let report = json!({
        "bench": "serve_chaos",
        "scale": scale_name,
        "seed": seed,
        "n_markets": snap.markets.len(),
        "n_carriers": snap.n_carriers(),
        "requests_per_market_per_scenario": n_requests,
        "scenarios": sections,
        "perf": json!({
            "requests_per_market": n_requests,
            "refit_every": PERF_REFIT_EVERY as u64,
            "batch_window": PERF_WINDOW as u64,
            "scenarios": perf_sections,
            "budget_failures": budget_failures,
        }),
        "total_invariant_violations": all_violations.len(),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    if !all_violations.is_empty() {
        eprintln!("bench_serve: INVARIANT VIOLATIONS (wrote {out}):");
        for v in &all_violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    if !budget_failures.is_empty() {
        eprintln!("bench_serve: PERF BUDGET FAILURES (wrote {out}):");
        for f in &budget_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    eprintln!("bench_serve: all scenarios clean (wrote {out})");
}
