//! Emits `BENCH_scale.json`: the paper-scale engine run — generation,
//! the fit thread curve, a singular leave-one-out accuracy sweep, and
//! the streaming-ingestion row (carriers/s absorbed via `apply_delta`,
//! plus a steady-state retune delta timed against a full refit with a
//! self-enforced >= 10x transient-RSS budget; nonzero exit on a miss or
//! on incremental/full divergence).
//!
//! Every `fit_thread_curve` row records the worker count the pool
//! *actually* used (the request is clamped to the parameter count — the
//! same fix `bench_cf` applies via `fit_worker_threads`) and the peak RSS
//! of that row alone: `VmHWM` is reset through `/proc/self/clear_refs`
//! before each fit and read back from `/proc/self/status` after it, so a
//! hungry row cannot hide behind an earlier one's high-water mark.
//!
//! Run with `cargo run --release -p auric-bench --bin bench_scale --
//! [tiny|medium|paper]` (default `paper`); debug builds are rejected.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use auric_core::{CfConfig, CfModel, DeltaApply, FitOptions, Scope, SharedKeyColumns};
use auric_model::{
    apply_fleet_deltas, empty_snapshot, AttrArena, DeltaSlot, FleetDelta, NetworkSnapshot, ParamId,
    Provenance,
};
use auric_netgen::{generate, stream, NetScale, TuningKnobs};
use auric_obs::Recorder;
use serde_json::json;

/// Resets the process's RSS high-water mark (`VmHWM`). Needs write access
/// to `/proc/self/clear_refs`; silently a no-op where that is denied (the
/// subsequent reading then reports the run-wide peak, which is still a
/// valid upper bound).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Current RSS high-water mark in MB, from `/proc/self/status`.
fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Leave-one-out accuracy over every singular parameter at every carrier,
/// on the global (key-column) path. Work-steals whole parameters across
/// `workers` threads; returns `(per-param (correct, total), micro, macro)`.
fn singular_global_loo(
    snap: &NetworkSnapshot,
    model: &CfModel,
    workers: usize,
) -> (Vec<(ParamId, usize, usize)>, f64, f64) {
    let params: Vec<ParamId> = snap.catalog.singular_ids().collect();
    let next = AtomicUsize::new(0);
    let rows = Mutex::new(Vec::with_capacity(params.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&p) = params.get(i) else { break };
                let mut correct = 0usize;
                for c in &snap.carriers {
                    let current = snap.config.value(p, c.id);
                    let rec = model.recommend_global_for_carrier(snap, p, c.id, Some(current));
                    correct += usize::from(rec.value == current);
                }
                rows.lock().unwrap().push((p, correct, snap.n_carriers()));
            });
        }
    });
    let mut rows = rows.into_inner().unwrap();
    rows.sort_by_key(|&(p, _, _)| p);
    let correct: usize = rows.iter().map(|r| r.1).sum();
    let total: usize = rows.iter().map(|r| r.2).sum();
    let micro = correct as f64 / total.max(1) as f64;
    let macro_ = rows
        .iter()
        .map(|&(_, c, t)| c as f64 / t.max(1) as f64)
        .sum::<f64>()
        / rows.len().max(1) as f64;
    (rows, micro, macro_)
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!("bench_scale: refusing to time a debug build; use --release");
        std::process::exit(2);
    }

    let scale_name = std::env::args().nth(1).unwrap_or_else(|| "paper".into());
    let scale = match scale_name.as_str() {
        "tiny" => NetScale::tiny(),
        "medium" => NetScale::medium(),
        // The paper's shape: 28 markets, ~400K carriers (Table 3).
        "paper" => NetScale {
            n_markets: 28,
            enbs_per_market: 1750,
            seed: 7,
        },
        other => {
            eprintln!("bench_scale: unknown scale {other:?} (tiny|medium|paper)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "bench_scale: generating {scale_name} network ({} markets x {} eNBs)...",
        scale.n_markets, scale.enbs_per_market
    );
    reset_peak_rss();
    let t0 = Instant::now();
    let net = generate(&scale, &TuningKnobs::default());
    let netgen_s = t0.elapsed().as_secs_f64();
    let netgen_rss_mb = peak_rss_mb();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let config = CfConfig::default();
    let n_params = snap.catalog.len();
    eprintln!(
        "bench_scale: {} carriers, {} pairs, netgen {netgen_s:.1}s (peak {netgen_rss_mb:.0} MB)",
        snap.n_carriers(),
        snap.x2.n_pairs()
    );

    let mut curve = Vec::new();
    let mut peak_mb = netgen_rss_mb;
    let mut model = None;
    for threads in [1usize, 2, 4, 8] {
        // What the pool will actually run with: the request clamped to the
        // job count (there is never more than one worker per parameter).
        let workers = threads.clamp(1, n_params);
        eprintln!("bench_scale: fit with {threads} requested threads ({workers} workers)...");
        // Drop the previous row's model before fitting the next one: two
        // paper-scale models resident at once would dominate the row's
        // high-water mark and measure the bench, not the fit.
        drop(model.take());
        reset_peak_rss();
        let obs = Recorder::wall();
        let t0 = Instant::now();
        let fitted = CfModel::fit_with(
            snap,
            &scope,
            config,
            FitOptions {
                obs: obs.clone(),
                threads: Some(threads),
                key_cache: None,
            },
        );
        let fit_s = t0.elapsed().as_secs_f64();
        let row_rss_mb = peak_rss_mb();
        peak_mb = peak_mb.max(row_rss_mb);
        eprintln!(
            "bench_scale:   {fit_s:.1}s, peak RSS {row_rss_mb:.0} MB, arena {} MB, \
             key columns built {} / shared {}",
            obs.gauge("cf.fit.arena.bytes") / (1 << 20),
            obs.gauge("cf.fit.keycol.built"),
            obs.gauge("cf.fit.keycol.shared"),
        );
        curve.push(json!({
            "threads": threads,
            "workers": workers,
            "fit_s": fit_s,
            "peak_rss_mb": row_rss_mb,
            "arena_bytes": obs.gauge("cf.fit.arena.bytes"),
            "keycol_built": obs.gauge("cf.fit.keycol.built"),
            "keycol_shared": obs.gauge("cf.fit.keycol.shared"),
            "keycol_bytes": obs.gauge("cf.fit.keycol.bytes"),
        }));
        model = Some(fitted);
    }
    let model = model.expect("at least one fit ran");

    let loo_workers = auric_core::fit_worker_threads(snap.catalog.singular_ids().count());
    eprintln!("bench_scale: singular LoO sweep ({loo_workers} workers)...");
    reset_peak_rss();
    let t0 = Instant::now();
    let (rows, micro, macro_) = singular_global_loo(snap, &model, loo_workers);
    let loo_s = t0.elapsed().as_secs_f64();
    let loo_rss_mb = peak_rss_mb();
    peak_mb = peak_mb.max(loo_rss_mb);
    let evaluated: usize = rows.iter().map(|r| r.2).sum();

    // ---- Streaming ingestion: absorb the fleet as a delta stream ----
    // Replays the generator batch-by-batch from the empty fleet through
    // `apply_delta`, then lands one steady-state retune batch twice —
    // incrementally and as a full refit — comparing wall time and
    // transient RSS (VmHWM delta over the current RSS after a reset).
    // The budget below holds the incremental path to a >= 10x transient-
    // RSS advantage whenever the full refit is big enough to measure
    // (>= 16 MB transient — medium scale and up; tiny is page noise).
    eprintln!("bench_scale: streaming ingestion replay...");
    let mut sstream = stream(&scale, &TuningKnobs::default());
    let mut snap2 = empty_snapshot(sstream.schema().clone(), sstream.catalog().clone());
    let mut arena = AttrArena::from_snapshot(&snap2);
    let mut scope2 = Scope::whole(&snap2);
    let mut inc = CfModel::fit(&snap2, &scope2, config);
    let mut absorb_batches = 0u64;
    let mut absorb_events = 0u64;
    let t0 = Instant::now();
    while let Some(batch) = sstream.next_batch() {
        let digest = apply_fleet_deltas(&mut snap2, &batch).expect("stream batch is consistent");
        arena.append(&snap2);
        let before = std::mem::replace(&mut scope2, Scope::whole(&snap2));
        inc.apply_delta(&DeltaApply {
            snapshot: &snap2,
            arena: &arena,
            scope_before: &before,
            scope_after: &scope2,
            batch: &digest,
            key_cache: Some(SharedKeyColumns::new()),
        });
        absorb_batches += 1;
        absorb_events += digest.events as u64;
    }
    let absorb_s = t0.elapsed().as_secs_f64();
    let carriers_per_s = snap2.n_carriers() as f64 / absorb_s.max(1e-9);
    eprintln!(
        "bench_scale:   absorbed {} carriers over {absorb_batches} batches in {absorb_s:.1}s \
         ({carriers_per_s:.0} carriers/s)",
        snap2.n_carriers()
    );

    // The steady-state delta a long-running service sees: a spread of
    // singular retunes, no fleet-shape change.
    let sing_params: Vec<ParamId> = snap2.catalog.singular_ids().collect();
    let retunes: Vec<FleetDelta> = snap2
        .carriers
        .iter()
        .take(64)
        .enumerate()
        .map(|(k, c)| {
            let p = sing_params[k % sing_params.len()];
            let card = snap2.catalog.def(p).range.n_values() as u16;
            FleetDelta::Retune {
                param: p,
                slot: DeltaSlot::Carrier(c.id),
                value: (snap2.config.value(p, c.id) + 1) % card,
                why: Provenance::Noise,
            }
        })
        .collect();
    let digest = apply_fleet_deltas(&mut snap2, &retunes).expect("retune batch is consistent");
    arena.append(&snap2);
    let before = std::mem::replace(&mut scope2, Scope::whole(&snap2));

    reset_peak_rss();
    let inc_base_mb = peak_rss_mb();
    let t0 = Instant::now();
    inc.apply_delta(&DeltaApply {
        snapshot: &snap2,
        arena: &arena,
        scope_before: &before,
        scope_after: &scope2,
        batch: &digest,
        key_cache: Some(SharedKeyColumns::new()),
    });
    let inc_s = t0.elapsed().as_secs_f64();
    let inc_transient_mb = (peak_rss_mb() - inc_base_mb).max(0.0);

    reset_peak_rss();
    let full_base_mb = peak_rss_mb();
    let t0 = Instant::now();
    let refit = CfModel::fit(&snap2, &scope2, config);
    let full_s = t0.elapsed().as_secs_f64();
    let full_transient_mb = (peak_rss_mb() - full_base_mb).max(0.0);
    peak_mb = peak_mb.max(peak_rss_mb());

    let inc_json = serde_json::to_string(&inc).expect("model serializes");
    let refit_json = serde_json::to_string(&refit).expect("model serializes");
    if inc_json != refit_json {
        eprintln!("bench_scale: FAIL — incremental model diverged from full refit");
        std::process::exit(1);
    }
    drop(refit);
    // A page-size floor keeps the ratio honest when the incremental
    // absorb is too small for VmHWM (kB granularity) to see at all.
    let rss_ratio = full_transient_mb / inc_transient_mb.max(1.0);
    let refit_speedup = full_s / inc_s.max(1e-9);
    eprintln!(
        "bench_scale:   retune delta absorbed in {inc_s:.3}s / {inc_transient_mb:.0} MB transient \
         vs full refit {full_s:.3}s / {full_transient_mb:.0} MB ({rss_ratio:.1}x RSS, \
         {refit_speedup:.1}x wall); models byte-identical"
    );
    let mut budget_ok = true;
    if full_transient_mb >= 16.0 && rss_ratio < 10.0 {
        eprintln!(
            "bench_scale: FAIL — incremental absorb transient RSS budget: \
             {rss_ratio:.1}x < 10x advantage over a full refit"
        );
        budget_ok = false;
    }

    let report = json!({
        "bench": "paper_scale_engine",
        "scale": scale_name,
        "n_markets": scale.n_markets,
        "enbs_per_market": scale.enbs_per_market,
        "n_carriers": snap.n_carriers(),
        "n_pairs": snap.x2.n_pairs(),
        "n_params": n_params,
        "n_segments": snap.markets.len(),
        "available_parallelism": std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1),
        "netgen_s": netgen_s,
        "netgen_peak_rss_mb": netgen_rss_mb,
        "fit_thread_curve": curve,
        "singular_loo": json!({
            "threads": loo_workers,
            "wall_s": loo_s,
            "peak_rss_mb": loo_rss_mb,
            "n_params": rows.len(),
            "evaluated_values": evaluated,
            "micro_accuracy": micro,
            "macro_accuracy": macro_,
        }),
        "stream_ingest": json!({
            "absorb_batches": absorb_batches,
            "absorb_events": absorb_events,
            "absorb_s": absorb_s,
            "carriers_per_s": carriers_per_s,
            "retune_delta": json!({
                "events": digest.events,
                "incremental_s": inc_s,
                "incremental_transient_mb": inc_transient_mb,
                "full_refit_s": full_s,
                "full_refit_transient_mb": full_transient_mb,
                "transient_rss_ratio": rss_ratio,
                "refit_speedup": refit_speedup,
            }),
        }),
        "peak_rss_mb": peak_mb,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_scale.json", &text).expect("write BENCH_scale.json");
    println!("{text}");
    eprintln!(
        "bench_scale: done — run peak RSS {peak_mb:.0} MB, singular LoO micro {micro:.4} \
         (wrote BENCH_scale.json)"
    );
    if !budget_ok {
        std::process::exit(1);
    }
}
