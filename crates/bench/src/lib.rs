//! Shared fixtures for the criterion benchmark targets.
//!
//! Every bench target regenerates one of the paper's tables or figures
//! (or an ablation of a design choice DESIGN.md calls out) at a bench-
//! friendly scale; this library holds the common snapshot and model
//! construction so each target measures the same workload.

use auric_core::legacy::LegacyCfModel;
use auric_core::{CfConfig, CfModel, Scope};
use auric_model::{NetworkSnapshot, ParamKind};
use auric_netgen::{generate, GeneratedNetwork, NetScale, TuningKnobs};

/// The standard bench network: tiny scale, default tuning, fixed seed.
pub fn bench_network() -> GeneratedNetwork {
    generate(&NetScale::tiny(), &TuningKnobs::default())
}

/// A slightly larger network for the experiment-level benches.
pub fn bench_network_small() -> GeneratedNetwork {
    generate(
        &NetScale {
            n_markets: 2,
            enbs_per_market: 16,
            seed: 7,
        },
        &TuningKnobs::default(),
    )
}

/// A fitted whole-network CF model over the bench network.
pub fn fitted(net: &GeneratedNetwork) -> (Scope, CfModel) {
    let scope = Scope::whole(&net.snapshot);
    let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
    (scope, model)
}

/// The full leave-one-out local-recommendation sweep on the packed-key
/// path: every parameter, every in-scope carrier or pair. This is the
/// accuracy-evaluation hot loop; the checksum keeps the work observable.
pub fn local_loo_sweep(snap: &NetworkSnapshot, scope: &Scope, model: &CfModel) -> u64 {
    let mut checksum = 0u64;
    for def in snap.catalog.defs() {
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    checksum += model.recommend_local_singular(snap, def.id, c, true).value as u64;
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    checksum += model.recommend_local_pair(snap, def.id, q, true).value as u64;
                }
            }
        }
    }
    checksum
}

/// The same sweep on the unpacked reference implementation.
pub fn local_loo_sweep_legacy(snap: &NetworkSnapshot, scope: &Scope, model: &LegacyCfModel) -> u64 {
    let mut checksum = 0u64;
    for def in snap.catalog.defs() {
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    checksum += model.recommend_local_singular(snap, def.id, c, true).value as u64;
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    checksum += model.recommend_local_pair(snap, def.id, q, true).value as u64;
                }
            }
        }
    }
    checksum
}

/// Run options pinning every experiment bench to the tiny scale.
pub fn bench_opts() -> auric_eval::RunOptions {
    auric_eval::RunOptions {
        scale: Some(NetScale::tiny()),
        knobs: TuningKnobs::default(),
        seed: 7,
        ..Default::default()
    }
}
