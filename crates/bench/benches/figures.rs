//! One bench per paper *figure*: each measures the end-to-end
//! regeneration of that figure's data series at bench scale.

use auric_bench::bench_opts;
use auric_eval::run_experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig2_distinct_values", |b| {
        b.iter(|| black_box(run_experiment("fig2", &opts).unwrap()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig3_distinct_per_market", |b| {
        b.iter(|| black_box(run_experiment("fig3", &opts).unwrap()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("fig4_skewness", |b| {
        b.iter(|| black_box(run_experiment("fig4", &opts).unwrap()))
    });
}

fn bench_fig10(c: &mut Criterion) {
    // Same machinery as Table 4 (per-parameter breakdown); measured on a
    // 4-parameter slice for the same reason as `bench_table4`.
    use auric_eval::experiments::global_learners::run_global_learners_filtered;
    use auric_model::ParamId;
    let opts = bench_opts();
    let params = [ParamId(0), ParamId(12), ParamId(30), ParamId(50)];
    let mut group = c.benchmark_group("fig10_per_param_accuracy");
    group.sample_size(10);
    group.bench_function("fig10_4param_slice", |b| {
        b.iter(|| black_box(run_global_learners_filtered(&opts, Some(&params))))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("fig11_local_top_variability");
    group.sample_size(10);
    group.bench_function("fig11", |b| {
        b.iter(|| black_box(run_experiment("fig11", &opts).unwrap()))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("fig12_mismatch_labels");
    group.sample_size(10);
    group.bench_function("fig12", |b| {
        b.iter(|| black_box(run_experiment("fig12", &opts).unwrap()))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
