//! One bench per paper *table*, plus the §4.3.2 global-vs-local headline.

use auric_bench::bench_opts;
use auric_eval::run_experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let opts = bench_opts();
    c.bench_function("table3_dataset_summary", |b| {
        b.iter(|| black_box(run_experiment("table3", &opts).unwrap()))
    });
}

fn bench_table4(c: &mut Criterion) {
    // The full 65-parameter Table 4 is a multi-minute release workload
    // (see `auric-eval table4`); the bench measures the same machinery on
    // a representative 4-parameter slice so criterion can iterate.
    use auric_eval::experiments::global_learners::run_global_learners_filtered;
    use auric_model::ParamId;
    let opts = bench_opts();
    let params = [ParamId(1), ParamId(9), ParamId(20), ParamId(45)];
    let mut group = c.benchmark_group("table4_five_global_learners");
    group.sample_size(10);
    group.bench_function("table4_4param_slice", |b| {
        b.iter(|| black_box(run_global_learners_filtered(&opts, Some(&params))))
    });
    group.finish();
}

fn bench_global_vs_local(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("sec4_3_2_global_vs_local");
    group.sample_size(10);
    group.bench_function("global_vs_local", |b| {
        b.iter(|| black_box(run_experiment("global-vs-local", &opts).unwrap()))
    });
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("table5_smartlaunch_campaign");
    group.sample_size(10);
    group.bench_function("table5", |b| {
        b.iter(|| black_box(run_experiment("table5", &opts).unwrap()))
    });
    group.finish();
}

criterion_group!(
    tables,
    bench_table3,
    bench_table4,
    bench_global_vs_local,
    bench_table5
);
criterion_main!(tables);
