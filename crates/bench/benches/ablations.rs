//! Ablation benches for the design choices DESIGN.md calls out: voting
//! threshold, significance level, locality radius, and dependency
//! selection strategy.

use auric_bench::bench_opts;
use auric_eval::run_experiment;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion, name: &'static str) {
    let opts = bench_opts();
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| black_box(run_experiment(name, &opts).unwrap()))
    });
    group.finish();
}

fn bench_ablation_vote(c: &mut Criterion) {
    bench_ablation(c, "ablation-vote");
}

fn bench_ablation_alpha(c: &mut Criterion) {
    bench_ablation(c, "ablation-alpha");
}

fn bench_ablation_hops(c: &mut Criterion) {
    bench_ablation(c, "ablation-hops");
}

fn bench_ablation_dependency(c: &mut Criterion) {
    bench_ablation(c, "ablation-dependency");
}

criterion_group!(
    ablations,
    bench_ablation_vote,
    bench_ablation_alpha,
    bench_ablation_hops,
    bench_ablation_dependency
);
criterion_main!(ablations);
