//! Micro-benchmarks of the core primitives: what an operator integrating
//! Auric actually cares about — model-fit latency and recommendation
//! throughput — plus the statistical kernels underneath.

use auric_bench::{
    bench_network, bench_network_small, fitted, local_loo_sweep, local_loo_sweep_legacy,
};
use auric_core::legacy::LegacyCfModel;
use auric_core::{recommend_singular, CfConfig, CfModel, NewCarrier, Scope};
use auric_stats::chi2::chi2_critical;
use auric_stats::contingency::ContingencyTable;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_chi2_critical(c: &mut Criterion) {
    c.bench_function("chi2_critical_df20_p01", |b| {
        b.iter(|| black_box(chi2_critical(black_box(20), black_box(0.01))))
    });
}

fn bench_contingency(c: &mut Criterion) {
    // A representative attribute × value table.
    let mut table = ContingencyTable::new(28, 12);
    for i in 0..28usize {
        for j in 0..12usize {
            table.add(i, j, ((i * 7 + j * 13) % 50) as u64 + 1);
        }
    }
    c.bench_function("contingency_chi2_28x12", |b| {
        b.iter(|| black_box(table.independence_test(0.01)))
    });
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("netgen");
    group.sample_size(10);
    group.bench_function("generate_tiny", |b| b.iter(|| black_box(bench_network())));
    group.finish();
}

fn bench_cf_fit(c: &mut Criterion) {
    let net = bench_network();
    let scope = Scope::whole(&net.snapshot);
    let mut group = c.benchmark_group("cf_fit");
    group.sample_size(10);
    group.bench_function("fit_tiny_whole_network", |b| {
        b.iter(|| black_box(CfModel::fit(&net.snapshot, &scope, CfConfig::default())))
    });
    group.bench_function("fit_tiny_legacy_unpacked", |b| {
        b.iter(|| {
            black_box(LegacyCfModel::fit(
                &net.snapshot,
                &scope,
                CfConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_local_loo(c: &mut Criterion) {
    // The accuracy-evaluation hot loop: a leave-one-out local
    // recommendation for every parameter at every slot.
    let net = bench_network();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let packed = CfModel::fit(snap, &scope, CfConfig::default());
    let legacy = LegacyCfModel::fit(snap, &scope, CfConfig::default());
    assert_eq!(
        local_loo_sweep(snap, &scope, &packed),
        local_loo_sweep_legacy(snap, &scope, &legacy),
        "packed and legacy sweeps must agree before timing them"
    );
    let mut group = c.benchmark_group("local_loo");
    group.sample_size(10);
    group.bench_function("sweep_tiny_packed", |b| {
        b.iter(|| black_box(local_loo_sweep(snap, &scope, &packed)))
    });
    group.bench_function("sweep_tiny_legacy_unpacked", |b| {
        b.iter(|| black_box(local_loo_sweep_legacy(snap, &scope, &legacy)))
    });
    group.finish();
}

fn bench_recommend_throughput(c: &mut Criterion) {
    let net = bench_network_small();
    let snap = &net.snapshot;
    let (_, model) = fitted(&net);
    // Cold-start recommendations for clones of existing carriers.
    let new_carriers: Vec<NewCarrier> = (0..64)
        .map(|i| {
            let id = auric_model::CarrierId::from_index(i * 3 % snap.n_carriers());
            NewCarrier {
                attrs: snap.carrier(id).attrs.clone(),
                neighbors: snap.x2.neighbors(id).to_vec(),
            }
        })
        .collect();
    let mut group = c.benchmark_group("recommendation");
    group.throughput(Throughput::Elements(new_carriers.len() as u64 * 39));
    group.bench_function("cold_start_singular_64_carriers", |b| {
        b.iter(|| {
            for nc in &new_carriers {
                black_box(recommend_singular(snap, &model, nc));
            }
        })
    });
    group.finish();
}

fn bench_decision_tree(c: &mut Criterion) {
    use auric_core::datasets::dataset_for_param;
    use auric_learners::{Classifier, DecisionTree};
    let net = bench_network();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let p = snap.catalog.singular_ids().next().unwrap();
    let data = dataset_for_param(snap, &scope, p);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    group.bench_function("decision_tree_fit_sfreqprio", |b| {
        b.iter(|| black_box(DecisionTree::paper().fit(&data)))
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_chi2_critical,
    bench_contingency,
    bench_generator,
    bench_cf_fit,
    bench_local_loo,
    bench_recommend_throughput,
    bench_decision_tree
);
criterion_main!(micro);
